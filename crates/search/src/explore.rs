//! Seeded flip-graph exploration: parallel random walks with greedy
//! reductions, visited-set dedup, plateau kicks, and restarts.
//!
//! Each walker is an independent random walk over [`IntScheme`] states,
//! deterministic given `(seed, walker index)`:
//!
//! * start from the classical scheme and apply a random [`flip`] per
//!   step (rejection-sampling term pairs that share a factor up to
//!   sign);
//! * after every flip, apply reductions greedily
//!   ([`flip::reduce_touching`]) — the only way rank drops;
//! * a plateau move that lands on an already-visited canonical form
//!   ([`IntScheme::canonical_hash`]) is undone and re-drawn (up to a
//!   small cap, so a fully explored neighborhood cannot livelock the
//!   walk);
//! * after `kick_after` steps without a rank drop, a random [`split`]
//!   (rank +1) kicks the walk out of its current flip component,
//!   bounded by `headroom` above the attempt's best rank;
//! * after `restart_after` steps without improving the attempt's best
//!   rank, the walk restarts from the classical scheme on a fresh
//!   stretch of the same RNG stream.
//!
//! Walkers run in parallel on the `fmm-runtime` work-stealing pool.
//! Reproducibility across pool widths and scheduling orders is exact:
//! no walker's outcome depends on any other walker's *progress* — the
//! only cross-walker channel is a monotone "lowest walker index that
//! reached the goal" register, and a walker may abort early only when
//! a *lower-indexed* walker has already reached the goal, in which case
//! the aborting walker can never be the selected result. The selected
//! scheme is therefore a pure function of `(seed, options)`.

use crate::flip::{self, FlipMove, Slot};
use crate::scheme::IntScheme;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Tuning knobs for a flip-graph exploration run.
#[derive(Clone, Debug)]
pub struct FlipOptions {
    /// Master seed; walker `w` derives its stream from `(seed, w)`.
    pub seed: u64,
    /// Stop a walker once its scheme's rank is ≤ this.
    pub goal: usize,
    /// Number of parallel walkers.
    pub walkers: usize,
    /// Per-walker step budget (flip attempts across all restarts).
    pub max_steps: u64,
    /// Steps without improving the attempt's best rank before the
    /// walker restarts from the classical scheme.
    pub restart_after: u64,
    /// Steps without a rank drop before a split kick is attempted.
    pub kick_after: u64,
    /// How far above the attempt's best rank kicks may climb.
    pub headroom: usize,
    /// Reject moves that push any factor entry above this bound.
    pub coeff_limit: i32,
    /// Stop inserting into the visited set beyond this many entries
    /// (the walk continues; dedup just stops growing).
    pub visited_cap: usize,
    /// Start (and restart) the walk from this scheme instead of the
    /// classical one. Warm starts from a known low-rank scheme are how
    /// the flip-graph literature descends below what cold walks reach
    /// — e.g. hunting ⟨3,3,3⟩:23 from the rank-24 direct sum
    /// ⟨1,3,3⟩ ⊕ ⟨2,3,3⟩ instead of the rank-27 classical start. Must
    /// match the explored base dimensions.
    pub start: Option<IntScheme>,
}

impl Default for FlipOptions {
    fn default() -> Self {
        // The recipe that discovers ⟨2,3,3⟩:15 from classical on this
        // move set: ±1 coefficients keep every factor in the share-rich
        // sparse regime (limit 2 walks stall one rank higher), frequent
        // kicks with iterated-local-search restarts hop basins without
        // abandoning low-rank incumbents.
        FlipOptions {
            seed: 0,
            goal: 0,
            walkers: 4,
            max_steps: 2_000_000,
            restart_after: 300_000,
            kick_after: 200,
            headroom: 3,
            coeff_limit: 1,
            visited_cap: 1 << 21,
            start: None,
        }
    }
}

/// Outcome of one walker's walk.
#[derive(Clone, Debug)]
pub struct WalkerOutcome {
    /// Best (lowest-rank) valid scheme the walker saw.
    pub best: IntScheme,
    /// Whether `best.rank() <= goal`.
    pub reached_goal: bool,
    /// Flip attempts consumed.
    pub steps: u64,
    /// Restarts taken.
    pub restarts: u64,
    /// Plateau moves undone because their canonical form was already
    /// visited.
    pub revisits: u64,
    /// True when the walker stopped early because a lower-indexed
    /// walker had already reached the goal.
    pub aborted: bool,
}

/// Result of [`explore`]: the deterministically selected best scheme
/// plus provenance for reproduction.
#[derive(Clone, Debug)]
pub struct FlipReport {
    /// The selected scheme (lowest rank; ties broken by walker index).
    pub best: IntScheme,
    /// `best.rank() <= goal`.
    pub reached_goal: bool,
    /// Index of the walker that produced `best`.
    pub walker: usize,
    /// That walker's consumed steps.
    pub steps: u64,
    /// That walker's restarts.
    pub restarts: u64,
    /// That walker's visited-set dedup hits.
    pub revisits: u64,
}

/// How many consecutive visited-state rejections a walker tolerates
/// before accepting a revisit anyway (prevents livelock in a fully
/// explored flip component).
const REVISIT_CAP: u32 = 24;

/// How many sampled flip-edge orientations to try before declaring
/// the state frozen (every draw rejected by the coefficient bound).
const FLIP_DRAWS: u32 = 512;

/// Steps between polls of the cross-walker early-stop register.
const POLL_MASK: u64 = 0xfff;

fn walker_rng(seed: u64, walker: usize) -> StdRng {
    StdRng::seed_from_u64(
        seed ^ (walker as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x5851_f42d_4c95_7f2d),
    )
}

/// Try a random split; on success, return the index of the term that
/// was split (its twin sits at the new last index).
fn random_split(rng: &mut StdRng, scheme: &mut IntScheme, limit: i32) -> Option<usize> {
    for _ in 0..32 {
        let r = rng.gen_range(0..scheme.rank());
        let slot = Slot::ALL[rng.gen_range(0..3usize)];
        let len = match slot {
            Slot::A => scheme.m * scheme.k,
            Slot::B => scheme.k * scheme.n,
            Slot::C => scheme.m * scheme.n,
        };
        // Sparse split vectors (one or two ±1 entries): dense splits
        // push the walk into generic factors that share nothing with
        // anyone, starving the flip graph of edges. Sparsity is where
        // the collisions — and the literature's target schemes — live.
        let mut d = vec![0i32; len];
        d[rng.gen_range(0..len)] = if rng.gen_bool(0.5) { 1 } else { -1 };
        if rng.gen_bool(0.25) {
            d[rng.gen_range(0..len)] = if rng.gen_bool(0.5) { 1 } else { -1 };
        }
        if flip::split(scheme, r, slot, &d, limit) {
            return Some(r);
        }
    }
    None
}

/// Plus-transition kick: split a random term, then force a flip
/// *through one of the two split halves* before re-reducing. The split
/// alone is useless — its halves still share two slots, so a bare
/// reduction would merge them straight back; the interposed flip is
/// what carries the walk into a different flip component (possibly one
/// rank up). Returns false (scheme unchanged up to a re-merge) when no
/// split or no escaping flip applies.
fn kick(rng: &mut StdRng, scheme: &mut IntScheme, limit: i32) -> bool {
    let Some(r) = random_split(rng, scheme, limit) else {
        return false;
    };
    let twin = scheme.rank() - 1;
    for _ in 0..64 {
        let pivot = if rng.gen_bool(0.5) { r } else { twin };
        let mut other = rng.gen_range(0..scheme.rank() - 1);
        if other >= pivot {
            other += 1;
        }
        let (p, q) = if rng.gen_bool(0.5) {
            (pivot, other)
        } else {
            (other, pivot)
        };
        let mv = FlipMove {
            r: p,
            s: q,
            slot: Slot::ALL[rng.gen_range(0..3usize)],
            variant: rng.gen_bool(0.5),
            negate: rng.gen_bool(0.5),
        };
        if flip::apply_flip(scheme, mv, limit).is_some() {
            flip::reduce_touching(scheme, limit, &[p, q, r, twin]);
            return true;
        }
    }
    // No flip applied: fold the split back (the halves still share two
    // slots, so this merges them) and report failure.
    flip::reduce_touching(scheme, limit, &[r, twin]);
    false
}

/// One walker's full deterministic walk. `min_reacher` carries the
/// lowest walker index that has reached the goal so far (for early
/// abort of walkers that can no longer be selected).
fn walk(
    m: usize,
    k: usize,
    n: usize,
    walker: usize,
    opts: &FlipOptions,
    min_reacher: &AtomicUsize,
) -> WalkerOutcome {
    let mut rng = walker_rng(opts.seed, walker);
    let fresh = |visited: &mut HashSet<u64>| {
        visited.clear();
        let mut s = match &opts.start {
            Some(start) => start.clone(),
            None => IntScheme::classical(m, k, n),
        };
        flip::reduce_all(&mut s, opts.coeff_limit);
        visited.insert(s.canonical_hash());
        s
    };
    let mut visited: HashSet<u64> = HashSet::new();
    let mut cur = fresh(&mut visited);
    let mut best = cur.clone();
    let mut attempt_best = cur.rank();
    let mut steps = 0u64;
    let mut restarts = 0u64;
    let mut revisits = 0u64;
    let mut since_improve = 0u64;
    let mut since_drop = 0u64;
    let mut revisit_streak = 0u32;
    let mut aborted = false;
    let stats = std::env::var_os("FMM_FLIP_STATS").is_some();
    let mut kicks = 0u64;
    let mut freezes = 0u64;
    // Descent-oracle dirty set: `None` = a full pair scan is due;
    // `Some(terms)` = only flips involving these terms can have become
    // reducing since the last scan (empty ⇒ the scan is a no-op).
    // Restricted scans miss descents where the changed term is only
    // the passive merge partner, so a full scan is forced periodically.
    let mut dirty: Option<Vec<usize>> = None;
    let mut since_full = 0u32;
    const FULL_SCAN_PERIOD: u32 = 1024;

    while steps < opts.max_steps && best.rank() > opts.goal {
        if stats && steps.is_multiple_of(100_000) && steps > 0 {
            eprintln!(
                "[w{walker}] step {steps}: rank {} attempt_best {attempt_best} best {} visited {} kicks {kicks} freezes {freezes} revisits {revisits}",
                cur.rank(),
                best.rank(),
                visited.len()
            );
        }
        if steps & POLL_MASK == 0 && min_reacher.load(Ordering::Relaxed) < walker {
            aborted = true;
            break;
        }
        steps += 1;
        since_improve += 1;
        since_drop += 1;

        if since_improve > opts.restart_after {
            restarts += 1;
            // Iterated local search: odd restarts re-launch from the
            // best scheme found so far (the RNG has advanced, so the
            // trajectory out of it is new), even restarts go back to
            // classical for diversification. Pure classical restarts
            // throw away hard-won low-rank incumbents; pure best
            // restarts over-exploit one basin.
            if restarts % 2 == 1 {
                visited.clear();
                cur = best.clone();
                visited.insert(cur.canonical_hash());
            } else {
                cur = fresh(&mut visited);
            }
            attempt_best = cur.rank();
            since_improve = 0;
            since_drop = 0;
            dirty = None;
            continue;
        }
        if since_drop > opts.kick_after && cur.rank() < attempt_best + opts.headroom {
            let kicked = kick(&mut rng, &mut cur, opts.coeff_limit);
            // Even a failed kick splits and re-merges, which may permute
            // terms; either way the oracle must rescan from scratch.
            dirty = None;
            if kicked {
                kicks += 1;
                since_drop = 0;
                if visited.len() < opts.visited_cap {
                    visited.insert(cur.canonical_hash());
                }
                continue;
            }
        }

        // Descent first: if any single flip enables a reduction
        // somewhere in the scheme, take it deterministically. The
        // random walk below only has to carry the scheme *between*
        // descent opportunities, not find them by luck.
        since_full += 1;
        if since_full >= FULL_SCAN_PERIOD {
            dirty = None;
        }
        if dirty.is_none() {
            since_full = 0;
        }
        let found = flip::find_reducing_flip_among(&cur, opts.coeff_limit, dirty.as_deref());
        if found.is_none() {
            // Current state is covered: nothing dirty until it changes.
            dirty = Some(Vec::new());
        }
        if let Some(mv) = found {
            if let Some(undo) = flip::apply_flip(&mut cur, mv, opts.coeff_limit) {
                let removed = flip::reduce_touching(&mut cur, opts.coeff_limit, &[mv.r, mv.s]);
                dirty = None;
                if removed > 0 {
                    since_drop = 0;
                    revisit_streak = 0;
                    if visited.len() < opts.visited_cap {
                        visited.insert(cur.canonical_hash());
                    }
                    if cur.rank() < attempt_best {
                        attempt_best = cur.rank();
                        since_improve = 0;
                    }
                    if cur.rank() < best.rank() {
                        best = cur.clone();
                        debug_assert!(best.is_valid());
                        if best.rank() <= opts.goal {
                            min_reacher.fetch_min(walker, Ordering::Relaxed);
                        }
                    }
                    continue;
                }
                // Oracle misfire (should not happen): revert, and do
                // not rescan this state — the oracle would just find
                // the same move again and spin.
                flip::undo_flip(&mut cur, undo);
                dirty = Some(Vec::new());
            }
        }

        // Sample uniformly over the applicable flip *edges* (term
        // pairs sharing a factor in some slot) rather than blind
        // (r, s, slot) draws — at sparse low-rank states almost all
        // blind draws share nothing, and it is exactly those states
        // where the walk needs to keep moving. An orientation may
        // still be rejected by the coefficient bound, hence the retry.
        let pairs = flip::share_pairs(&cur);
        let mut applied = None;
        for _ in 0..FLIP_DRAWS {
            if pairs.is_empty() {
                break;
            }
            let (p, q, slot) = pairs[rng.gen_range(0..pairs.len())];
            let (r, s) = if rng.gen_bool(0.5) { (p, q) } else { (q, p) };
            let mv = FlipMove {
                r,
                s,
                slot,
                variant: rng.gen_bool(0.5),
                negate: rng.gen_bool(0.5),
            };
            if let Some(undo) = flip::apply_flip(&mut cur, mv, opts.coeff_limit) {
                applied = Some((mv, undo));
                break;
            }
        }
        let Some((mv, undo)) = applied else {
            // No in-bound flip exists: the component is frozen. Kick
            // out if headroom allows; only when even that fails does
            // the walker burn a restart.
            freezes += 1;
            if cur.rank() < attempt_best + opts.headroom
                && kick(&mut rng, &mut cur, opts.coeff_limit)
            {
                kicks += 1;
                since_drop = 0;
                continue;
            }
            since_improve = opts.restart_after;
            continue;
        };

        let removed = flip::reduce_touching(&mut cur, opts.coeff_limit, &[mv.r, mv.s]);
        if removed == 0 {
            // Sparsity bias: flips tend to densify factors over ℤ, and
            // dense generic factors share nothing with anyone, starving
            // the walk of both flips and reductions. Keep the walk in
            // the share-rich sparse regime: accept denser states only
            // with probability 1/(1+Δnnz).
            let before = undo.r.1.nnz() + undo.s.1.nnz();
            let after = cur.terms[mv.r].nnz() + cur.terms[mv.s].nnz();
            if after > before && rng.gen_range(0..after - before + 1) != 0 {
                flip::undo_flip(&mut cur, undo);
                continue;
            }
            // Plateau move: dedup against the visited set.
            let h = cur.canonical_hash();
            if visited.contains(&h) {
                revisits += 1;
                if revisit_streak < REVISIT_CAP {
                    revisit_streak += 1;
                    flip::undo_flip(&mut cur, undo);
                    continue;
                }
            }
            revisit_streak = 0;
            if visited.len() < opts.visited_cap {
                visited.insert(h);
            }
            dirty = Some(vec![mv.r, mv.s]);
            continue;
        }

        // Rank dropped.
        dirty = None;
        since_drop = 0;
        revisit_streak = 0;
        if visited.len() < opts.visited_cap {
            visited.insert(cur.canonical_hash());
        }
        if cur.rank() < attempt_best {
            attempt_best = cur.rank();
            since_improve = 0;
        }
        if cur.rank() < best.rank() {
            best = cur.clone();
            debug_assert!(best.is_valid());
            if best.rank() <= opts.goal {
                min_reacher.fetch_min(walker, Ordering::Relaxed);
            }
        }
    }

    WalkerOutcome {
        reached_goal: best.rank() <= opts.goal,
        best,
        steps,
        restarts,
        revisits,
        aborted,
    }
}

/// Run `opts.walkers` parallel walkers over the `⟨m,k,n⟩` flip graph
/// and deterministically select the best outcome: the lowest rank,
/// ties broken by lowest walker index (see the module docs for why the
/// early-abort channel cannot perturb this selection).
///
/// The returned scheme is always a valid ℤ decomposition of the matmul
/// tensor — walkers only ever hold valid states — but callers emitting
/// it into the catalog must still pass it through
/// [`fmm_verify::certify_exact`]; see `discover-flip`.
pub fn explore(m: usize, k: usize, n: usize, opts: &FlipOptions) -> FlipReport {
    assert!(opts.walkers > 0, "at least one walker");
    assert!(opts.goal >= 1, "goal rank must be positive");
    let min_reacher = AtomicUsize::new(usize::MAX);
    let mut outcomes: Vec<Option<WalkerOutcome>> = (0..opts.walkers).map(|_| None).collect();
    fmm_runtime::scope(|s| {
        for (walker, slot) in outcomes.iter_mut().enumerate() {
            let min_reacher = &min_reacher;
            s.spawn(move |_| {
                *slot = Some(walk(m, k, n, walker, opts, min_reacher));
            });
        }
    });
    let outcomes: Vec<WalkerOutcome> = outcomes.into_iter().map(Option::unwrap).collect();
    let pick = outcomes
        .iter()
        .enumerate()
        .min_by_key(|(i, o)| (o.best.rank(), *i))
        .map(|(i, _)| i)
        .expect("walkers > 0");
    let o = outcomes[pick].clone();
    FlipReport {
        best: o.best,
        reached_goal: o.reached_goal,
        walker: pick,
        steps: o.steps,
        restarts: o.restarts,
        revisits: o.revisits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_verify::Certify;

    fn quick_opts(goal: usize, seed: u64) -> FlipOptions {
        FlipOptions {
            seed,
            goal,
            walkers: 2,
            max_steps: 60_000,
            restart_after: 20_000,
            ..FlipOptions::default()
        }
    }

    #[test]
    fn rediscovers_strassen_rank_7_from_classical() {
        let report = explore(2, 2, 2, &quick_opts(7, 1));
        assert!(report.reached_goal, "best rank {}", report.best.rank());
        assert_eq!(report.best.rank(), 7);
        assert!(report.best.is_valid());
        report.best.to_decomposition().certify().unwrap();
    }

    #[test]
    fn exploration_is_deterministic_per_seed() {
        let a = explore(2, 2, 2, &quick_opts(7, 42));
        let b = explore(2, 2, 2, &quick_opts(7, 42));
        assert_eq!(a.best, b.best);
        assert_eq!(
            (a.walker, a.steps, a.restarts),
            (b.walker, b.steps, b.restarts)
        );
        let c = explore(2, 2, 2, &quick_opts(7, 43));
        // A different seed walks a different path (the schemes may tie
        // at rank 7, but the trajectories differ).
        assert!(c.reached_goal);
        assert!(a.steps != c.steps || a.best != c.best);
    }

    #[test]
    fn unreachable_goal_reports_best_effort() {
        // Rank 1 for ⟨2,2,2⟩ does not exist: the walk must terminate at
        // its budget with a valid best-effort scheme.
        let opts = FlipOptions {
            seed: 7,
            goal: 1,
            walkers: 1,
            max_steps: 3_000,
            restart_after: 1_000,
            ..FlipOptions::default()
        };
        let report = explore(2, 2, 2, &opts);
        assert!(!report.reached_goal);
        assert!(report.best.is_valid());
        assert!(report.best.rank() <= 8);
    }
}
