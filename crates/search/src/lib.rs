//! Numerical search for fast matrix multiplication algorithms.
//!
//! Implements the method of §2.3.2 of the paper: given a base case
//! `⟨M,K,N⟩` and a target rank `R`, find factor matrices `⟦U,V,W⟧` that
//! satisfy the Brent equations by **alternating least squares** (ALS) —
//! fix two factors and solve a linear least-squares problem for the
//! third — with the refinements the paper inherits from Johnson &
//! McLoughlin and Smirnov:
//!
//! * multiple random starting points (local-minimum escape),
//! * Tikhonov regularization of the inner solves (ill-conditioning),
//! * sparsification/rounding toward discrete values to recover exact
//!   algorithms from numerical approximations, and
//! * a *repair* mode that starts ALS from a hand-entered candidate and
//!   snaps it back onto an exact nearby solution.
//!
//! The same machinery doubles as a **border-rank fitter** for APA
//! algorithms (§2.2.3): run at a rank below the exact rank, the best
//! achievable residual decays as factor norms grow, which is exactly
//! the behaviour of an approximate (Bini-style) algorithm at a fixed
//! `λ`.
//!
//! # Flip-graph search (exact, no numerics)
//!
//! Alongside ALS the crate implements **flip-graph exploration** over
//! exact ℤ-coefficient schemes ("Fast Matrix Multiplication in Small
//! Formats", PAPERS.md): [`scheme`] is the integer state space,
//! [`flip`] the tensor-preserving moves (flips, reductions, splits),
//! and [`explore`] the seeded parallel random-walk driver. Where ALS
//! descends a float residual and must *round* its way back to an exact
//! algorithm, every flip-graph state is exact by construction — the
//! search's only objective is rank. The `discover-flip` binary runs it
//! end to end and emits `.alg` files only after
//! [`fmm_verify::certify_exact`] proves every Brent equation in ℚ.
//!
//! For ⟨3,3,3⟩ specifically, the flip graph **supersedes the ALS
//! border-rank route for planning**: ALS runs below rank 23 stall in
//! the well-known border swamp (Frobenius residual plateauing near
//! 1.0, factor norms growing — the signature of a border-rank-only
//! decomposition), whereas the flip walk lands the exact rank-23
//! scheme that the catalog can certify and every backend (including
//! GF(2), which cannot execute border fits at all) can run.

mod als;
pub mod explore;
pub mod flip;
mod polish;
pub mod scheme;

pub use als::{als_fit, als_from_random, frob_residual, random_init, AlsOptions, AlsReport};
pub use explore::{explore, FlipOptions, FlipReport, WalkerOutcome};
pub use flip::{
    apply_flip, reduce_all, reduce_touching, shared_sign, split, undo_flip, FlipMove, FlipUndo,
    Slot,
};
pub use polish::{polish_to_exact, repair, search};
pub use scheme::{matmul_tensor_int, IntScheme, Term};

use fmm_tensor::Decomposition;

/// Outcome of a search: the decomposition plus provenance diagnostics.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The discovered (or repaired) decomposition.
    pub decomposition: Decomposition,
    /// Final max-norm Brent residual.
    pub residual: f64,
    /// Number of ALS restarts consumed.
    pub restarts_used: usize,
    /// Whether the factor entries were successfully rounded to small
    /// dyadic rationals (an "exact" discrete algorithm).
    pub discrete: bool,
}
