//! Numerical search for fast matrix multiplication algorithms.
//!
//! Implements the method of §2.3.2 of the paper: given a base case
//! `⟨M,K,N⟩` and a target rank `R`, find factor matrices `⟦U,V,W⟧` that
//! satisfy the Brent equations by **alternating least squares** (ALS) —
//! fix two factors and solve a linear least-squares problem for the
//! third — with the refinements the paper inherits from Johnson &
//! McLoughlin and Smirnov:
//!
//! * multiple random starting points (local-minimum escape),
//! * Tikhonov regularization of the inner solves (ill-conditioning),
//! * sparsification/rounding toward discrete values to recover exact
//!   algorithms from numerical approximations, and
//! * a *repair* mode that starts ALS from a hand-entered candidate and
//!   snaps it back onto an exact nearby solution.
//!
//! The same machinery doubles as a **border-rank fitter** for APA
//! algorithms (§2.2.3): run at a rank below the exact rank, the best
//! achievable residual decays as factor norms grow, which is exactly
//! the behaviour of an approximate (Bini-style) algorithm at a fixed
//! `λ`.

mod als;
mod polish;

pub use als::{als_fit, als_from_random, frob_residual, random_init, AlsOptions, AlsReport};
pub use polish::{polish_to_exact, repair, search};

use fmm_tensor::Decomposition;

/// Outcome of a search: the decomposition plus provenance diagnostics.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The discovered (or repaired) decomposition.
    pub decomposition: Decomposition,
    /// Final max-norm Brent residual.
    pub residual: f64,
    /// Number of ALS restarts consumed.
    pub restarts_used: usize,
    /// Whether the factor entries were successfully rounded to small
    /// dyadic rationals (an "exact" discrete algorithm).
    pub discrete: bool,
}
