//! The flip-graph moves: flips, reductions, and splits.
//!
//! All three moves rewrite a pair (or one) of rank-one terms while
//! leaving the represented tensor *identically unchanged over ℤ* — the
//! correctness argument is a two-line algebraic identity per move, so
//! the search never needs numerics and every reachable state is exact:
//!
//! * **flip** (rank-preserving): two terms sharing a factor up to sign,
//!   say `a⊗b₁⊗c₁ + a⊗b₂⊗c₂`, become `a⊗(b₁+b₂)⊗c₁ + a⊗b₂⊗(c₂−c₁)`
//!   (and the three symmetric variants). This is the edge relation of
//!   the Kauers–Moosbauer flip graph.
//! * **reduction** (rank −1 or −2): two terms sharing *two* factors up
//!   to sign merge into one (`a⊗b⊗c₁ + a⊗b⊗c₂ = a⊗b⊗(c₁+c₂)`); a term
//!   with a zero factor is deleted. Reductions are applied greedily —
//!   they are the only way rank ever drops.
//! * **split** (rank +1, the "plateau kick"): one term `a⊗b⊗c` becomes
//!   `a⊗d⊗c + a⊗(b−d)⊗c` for a random `d`, the inverse of a reduction.
//!   Used to climb out of flip-connected components with no further
//!   reductions (the plus-transition of Moosbauer–Poole).
//!
//! Every move is gated on a coefficient bound: a candidate that would
//! push any factor entry above `limit` in absolute value is rejected,
//! keeping the walk inside a bounded integer lattice (the literature
//! schemes at the target ranks have entries in `{−1,0,1}`).

use crate::scheme::{IntScheme, Term};

/// Which factor slot two terms share in a flip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    /// Shared A-side factor: the flip rewrites `b` and `c`.
    A,
    /// Shared B-side factor: the flip rewrites `a` and `c`.
    B,
    /// Shared C-side factor: the flip rewrites `a` and `b`.
    C,
}

impl Slot {
    /// All slots, for enumeration.
    pub const ALL: [Slot; 3] = [Slot::A, Slot::B, Slot::C];
}

/// A fully specified flip: ordered term pair `(r, s)`, the shared slot,
/// and which of the four rewrite orientations to apply.
#[derive(Clone, Copy, Debug)]
pub struct FlipMove {
    /// Index of the term whose factor receives the sum.
    pub r: usize,
    /// Index of the term whose factor receives the difference.
    pub s: usize,
    /// The slot the two terms share (up to sign).
    pub slot: Slot,
    /// Orientation: `false` puts the sum on the first free slot,
    /// `true` on the second.
    pub variant: bool,
    /// Rewrite term `s` in its sign-orbit twin `x⊗(−y)⊗(−z)` before
    /// applying the identity, turning the sum into a difference. Over
    /// ℤ the two orientations are genuinely different moves (over F₂
    /// they coincide), and the negated one is what lets overlapping
    /// same-sign factors *cancel* instead of blowing the coefficient
    /// bound.
    pub negate: bool,
}

/// `+1` when `x == y`, `-1` when `x == -y`, `None` otherwise.
/// (The zero vector never reports a share — degenerate terms are
/// reduction fodder, not flip partners.)
pub fn shared_sign(x: &[i32], y: &[i32]) -> Option<i32> {
    let mut eq = true;
    let mut neg = true;
    let mut nonzero = false;
    for (&xi, &yi) in x.iter().zip(y) {
        eq &= xi == yi;
        neg &= xi == -yi;
        if xi != 0 {
            nonzero = true;
        }
        if !eq && !neg {
            return None;
        }
    }
    match (nonzero, eq) {
        (false, _) => None,
        (true, true) => Some(1),
        (true, false) => Some(-1),
    }
}

fn add_scaled(dst: &[i32], src: &[i32], sign: i32) -> Vec<i32> {
    dst.iter().zip(src).map(|(&d, &s)| d + sign * s).collect()
}

fn within(v: &[i32], limit: i32) -> bool {
    v.iter().all(|&x| x.abs() <= limit)
}

/// Undo record for a flip: the two replaced terms.
#[derive(Clone, Debug)]
pub struct FlipUndo {
    /// Index and previous value of the first rewritten term.
    pub r: (usize, Term),
    /// Index and previous value of the second rewritten term.
    pub s: (usize, Term),
}

/// Compute the rewritten `(r, s)` term pair for a flip, without
/// touching any scheme. `None` when the terms do not share `slot` up
/// to sign or a rewritten factor would exceed `limit`.
fn flipped_pair(
    tr: &Term,
    ts: &Term,
    slot: Slot,
    variant: bool,
    negate: bool,
    limit: i32,
) -> Option<(Term, Term)> {
    // With shared slot X = x (so x_r == σ·x_s): rewrite term s in the
    // equivalent form (x_r, σ·y_s, z_s) — the shared factor exactly
    // equal — then apply the flip identity
    //   x⊗y_r⊗z_r + x⊗y_s⊗z_s = x⊗(y_r+y_s)⊗z_r + x⊗y_s⊗(z_s−z_r)
    // (variant false) or its mirror with the sum on z (variant true).
    // `negate` first replaces (x, σ·y_s, z_s) by its sign-orbit twin
    // (x, −σ·y_s, −z_s) — same term, different flip.
    let (sigma, shared, yr, zr, ys, zs) = match slot {
        Slot::A => (
            shared_sign(&tr.a, &ts.a)?,
            &tr.a,
            &tr.b,
            &tr.c,
            &ts.b,
            &ts.c,
        ),
        Slot::B => (
            shared_sign(&tr.b, &ts.b)?,
            &tr.b,
            &tr.a,
            &tr.c,
            &ts.a,
            &ts.c,
        ),
        Slot::C => (
            shared_sign(&tr.c, &ts.c)?,
            &tr.c,
            &tr.a,
            &tr.b,
            &ts.a,
            &ts.b,
        ),
    };
    let tau = if negate { -sigma } else { sigma };
    let ys_adj: Vec<i32> = ys.iter().map(|&x| tau * x).collect();
    let zs_adj: Vec<i32> = if negate {
        zs.iter().map(|&x| -x).collect()
    } else {
        zs.clone()
    };
    let (new_yr, new_zr, new_ys, new_zs) = if !variant {
        // y_r ← y_r + y_s', z_s ← z_s' − z_r.
        (
            add_scaled(yr, &ys_adj, 1),
            zr.clone(),
            ys_adj.clone(),
            add_scaled(&zs_adj, zr, -1),
        )
    } else {
        // z_r ← z_r + z_s', y_s' ← y_s' − y_r.
        (
            yr.clone(),
            add_scaled(zr, &zs_adj, 1),
            add_scaled(&ys_adj, yr, -1),
            zs_adj.clone(),
        )
    };
    if !within(&new_yr, limit)
        || !within(&new_zr, limit)
        || !within(&new_ys, limit)
        || !within(&new_zs, limit)
    {
        return None;
    }
    let rebuild = |shared: Vec<i32>, y: Vec<i32>, z: Vec<i32>| match slot {
        Slot::A => Term {
            a: shared,
            b: y,
            c: z,
        },
        Slot::B => Term {
            b: shared,
            a: y,
            c: z,
        },
        Slot::C => Term {
            c: shared,
            a: y,
            b: z,
        },
    };
    Some((
        rebuild(shared.clone(), new_yr, new_zr),
        rebuild(shared.clone(), new_ys, new_zs),
    ))
}

/// Apply `mv` if the two terms share the requested slot (up to sign)
/// and the rewritten factors stay within `limit`. Returns the undo
/// record on success. The scheme's tensor is unchanged by construction.
pub fn apply_flip(scheme: &mut IntScheme, mv: FlipMove, limit: i32) -> Option<FlipUndo> {
    let FlipMove {
        r,
        s,
        slot,
        variant,
        negate,
    } = mv;
    if r == s || r >= scheme.rank() || s >= scheme.rank() {
        return None;
    }
    let (new_r, new_s) = flipped_pair(
        &scheme.terms[r],
        &scheme.terms[s],
        slot,
        variant,
        negate,
        limit,
    )?;
    let undo = FlipUndo {
        r: (r, std::mem::replace(&mut scheme.terms[r], new_r)),
        s: (s, std::mem::replace(&mut scheme.terms[s], new_s)),
    };
    Some(undo)
}

/// Revert a flip applied by [`apply_flip`]. Only valid while the term
/// indices are unchanged (i.e. before any reduction ran).
pub fn undo_flip(scheme: &mut IntScheme, undo: FlipUndo) {
    scheme.terms[undo.r.0] = undo.r.1;
    scheme.terms[undo.s.0] = undo.s.1;
}

/// Try to merge terms `t` and `i` (two shared slots up to sign) into
/// `t`. Returns true on success, with term `i` left degenerate-free to
/// delete by the caller — the merged factor must stay within `limit`.
fn try_merge(scheme: &mut IntScheme, t: usize, i: usize, limit: i32) -> bool {
    let (tt, ti) = (&scheme.terms[t], &scheme.terms[i]);
    let sa = shared_sign(&tt.a, &ti.a);
    let sb = shared_sign(&tt.b, &ti.b);
    let sc = shared_sign(&tt.c, &ti.c);
    // a⊗b⊗c_t + (σ_a a)⊗(σ_b b)⊗c_i = a⊗b⊗(c_t + σ_a σ_b c_i), etc.
    let merged: Option<(Vec<i32>, Slot)> = if let (Some(sa), Some(sb)) = (sa, sb) {
        Some((add_scaled(&tt.c, &ti.c, sa * sb), Slot::C))
    } else if let (Some(sa), Some(sc)) = (sa, sc) {
        Some((add_scaled(&tt.b, &ti.b, sa * sc), Slot::B))
    } else if let (Some(sb), Some(sc)) = (sb, sc) {
        Some((add_scaled(&tt.a, &ti.a, sb * sc), Slot::A))
    } else {
        None
    };
    match merged {
        Some((v, _)) if !within(&v, limit) => false,
        Some((v, slot)) => {
            match slot {
                Slot::A => scheme.terms[t].a = v,
                Slot::B => scheme.terms[t].b = v,
                Slot::C => scheme.terms[t].c = v,
            }
            true
        }
        None => false,
    }
}

/// Apply reductions greedily until none remain, starting from the
/// terms in `touched` (after a flip, only pairs involving a rewritten
/// term can newly have become reducible — the walker maintains the
/// invariant that the scheme was fully reduced before the flip).
/// Returns the number of terms removed.
pub fn reduce_touching(scheme: &mut IntScheme, limit: i32, touched: &[usize]) -> usize {
    let mut work: Vec<usize> = touched.to_vec();
    let mut removed = 0usize;
    while let Some(t) = work.pop() {
        if t >= scheme.rank() {
            continue;
        }
        // Zero-factor terms vanish outright.
        if scheme.terms[t].is_degenerate() {
            scheme.terms.swap_remove(t);
            removed += 1;
            // The swapped-in term kept its content; only its index
            // changed, which cannot create new reductions, but pending
            // work items pointing at the old last index must follow it.
            let old_last = scheme.rank();
            for w in &mut work {
                if *w == old_last {
                    *w = t;
                }
            }
            continue;
        }
        let mut i = 0;
        while i < scheme.rank() {
            if i == t {
                i += 1;
                continue;
            }
            if try_merge(scheme, t, i, limit) {
                scheme.terms.swap_remove(i);
                removed += 1;
                let old_last = scheme.rank();
                let follow = |w: usize| if w == old_last { i } else { w };
                work = work.into_iter().map(follow).collect();
                // The merged term changed: re-examine it from scratch
                // (it may now be degenerate or merge with others).
                let t = follow(t);
                work.push(t);
                break;
            }
            i += 1;
        }
    }
    removed
}

/// Full-scan reduction pass: reduce every pair until fixpoint. Used at
/// walk start and as the correctness backstop in tests; the walker's
/// steady state uses [`reduce_touching`].
pub fn reduce_all(scheme: &mut IntScheme, limit: i32) -> usize {
    let touched: Vec<usize> = (0..scheme.rank()).collect();
    reduce_touching(scheme, limit, &touched)
}

/// Sign-canonical form of a nonzero vector: negated if its leading
/// nonzero entry is negative, so `v` and `−v` map to the same key.
fn sign_canon(v: &[i32]) -> Option<Vec<i32>> {
    let lead = v.iter().find(|&&x| x != 0)?;
    if *lead < 0 {
        Some(v.iter().map(|&x| -x).collect())
    } else {
        Some(v.to_vec())
    }
}

/// One-step descent oracle: find a flip whose application immediately
/// enables a reduction — a rewritten factor that becomes zero, or a
/// rewritten term that newly shares two slots (within `limit`) with
/// some other term. Returns the first such move in a deterministic
/// scan order, or `None` when no single flip can drop the rank.
///
/// This is what turns the blind random walk into a descending one:
/// rank-drop coincidences are far too rare for rejection sampling to
/// hit, but with per-slot vector indexes they can be *enumerated* at a
/// cost comparable to a handful of random steps.
pub fn find_reducing_flip(scheme: &IntScheme, limit: i32) -> Option<FlipMove> {
    find_reducing_flip_among(scheme, limit, None)
}

/// [`find_reducing_flip`] restricted to flips *involving* one of the
/// `dirty` terms (`None` = all pairs). After a plateau flip only the
/// two rewritten terms can participate in newly enabled descents as
/// flip members, so scanning their pairs covers almost everything at a
/// fraction of the cost; a descent whose dirty term is only the
/// passive merge partner is missed, which callers absorb by scheduling
/// periodic full scans.
pub fn find_reducing_flip_among(
    scheme: &IntScheme,
    limit: i32,
    dirty: Option<&[usize]>,
) -> Option<FlipMove> {
    use std::collections::BTreeMap;
    // Per-slot index: sign-canonical factor → terms carrying it.
    let mut index: [BTreeMap<Vec<i32>, Vec<usize>>; 3] =
        [BTreeMap::new(), BTreeMap::new(), BTreeMap::new()];
    for (t, term) in scheme.terms.iter().enumerate() {
        for (si, v) in [&term.a, &term.b, &term.c].into_iter().enumerate() {
            if let Some(c) = sign_canon(v) {
                index[si].entry(c).or_default().push(t);
            }
        }
    }
    // `x` (a just-rewritten term) merges with `t` if they share two
    // slots up to sign and the merged third factor stays in bounds.
    let mergeable = |x: &Term, t: usize| -> bool {
        let other = &scheme.terms[t];
        let sa = shared_sign(&x.a, &other.a);
        let sb = shared_sign(&x.b, &other.b);
        let sc = shared_sign(&x.c, &other.c);
        match (sa, sb, sc) {
            (Some(sa), Some(sb), _) => within(&add_scaled(&x.c, &other.c, sa * sb), limit),
            (Some(sa), _, Some(sc)) => within(&add_scaled(&x.b, &other.b, sa * sc), limit),
            (_, Some(sb), Some(sc)) => within(&add_scaled(&x.a, &other.a, sb * sc), limit),
            _ => false,
        }
    };
    let is_dirty = |t: usize| dirty.is_none_or(|d| d.contains(&t));
    for (si, slot) in Slot::ALL.into_iter().enumerate() {
        for bucket in index[si].values() {
            for (bi, &p) in bucket.iter().enumerate() {
                for &q in &bucket[bi + 1..] {
                    if !is_dirty(p) && !is_dirty(q) {
                        continue;
                    }
                    for (r, s) in [(p, q), (q, p)] {
                        for variant in [false, true] {
                            for negate in [false, true] {
                                let mv = FlipMove {
                                    r,
                                    s,
                                    slot,
                                    variant,
                                    negate,
                                };
                                let Some((new_r, new_s)) = flipped_pair(
                                    &scheme.terms[r],
                                    &scheme.terms[s],
                                    slot,
                                    variant,
                                    negate,
                                    limit,
                                ) else {
                                    continue;
                                };
                                if new_r.is_degenerate() || new_s.is_degenerate() {
                                    return Some(mv);
                                }
                                for (x, other) in [(&new_r, &new_s), (&new_s, &new_r)] {
                                    // Candidate partners: terms whose
                                    // indexed factor matches one of
                                    // x's (possibly new) factors.
                                    for (yi, v) in [&x.a, &x.b, &x.c].into_iter().enumerate() {
                                        let Some(c) = sign_canon(v) else { continue };
                                        let Some(ts) = index[yi].get(&c) else {
                                            continue;
                                        };
                                        for &t in ts {
                                            if t != r && t != s && mergeable(x, t) {
                                                return Some(mv);
                                            }
                                        }
                                    }
                                    // r and s themselves still share
                                    // `slot`; a second share between
                                    // the rewritten pair reduces too.
                                    let sa = shared_sign(&x.a, &other.a);
                                    let sb = shared_sign(&x.b, &other.b);
                                    let sc = shared_sign(&x.c, &other.c);
                                    let pair_merge = match (sa, sb, sc) {
                                        (Some(sa), Some(sb), _) => {
                                            within(&add_scaled(&x.c, &other.c, sa * sb), limit)
                                        }
                                        (Some(sa), _, Some(sc)) => {
                                            within(&add_scaled(&x.b, &other.b, sa * sc), limit)
                                        }
                                        (_, Some(sb), Some(sc)) => {
                                            within(&add_scaled(&x.a, &other.a, sb * sc), limit)
                                        }
                                        _ => false,
                                    };
                                    if pair_merge {
                                        return Some(mv);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    None
}

/// All unordered term pairs sharing a factor (up to sign) in some
/// slot — the applicable flip edges at the current state, in
/// deterministic order. Random walks sample uniformly from these
/// instead of blindly drawing term pairs, most of which share nothing
/// and waste the draw.
pub fn share_pairs(scheme: &IntScheme) -> Vec<(usize, usize, Slot)> {
    use std::collections::BTreeMap;
    let mut out = Vec::new();
    for (si, slot) in Slot::ALL.into_iter().enumerate() {
        let mut buckets: BTreeMap<Vec<i32>, Vec<usize>> = BTreeMap::new();
        for (t, term) in scheme.terms.iter().enumerate() {
            let v = [&term.a, &term.b, &term.c][si];
            if let Some(c) = sign_canon(v) {
                buckets.entry(c).or_default().push(t);
            }
        }
        for bucket in buckets.values() {
            for (bi, &p) in bucket.iter().enumerate() {
                for &q in &bucket[bi + 1..] {
                    out.push((p, q, slot));
                }
            }
        }
    }
    out
}

/// Split term `r`'s `slot` factor into `d` and `factor − d`, growing
/// the rank by one (the plateau kick). Rejected when either part is
/// zero (that would be a no-op plus a degenerate term) or exceeds
/// `limit`. Returns true when applied.
pub fn split(scheme: &mut IntScheme, r: usize, slot: Slot, d: &[i32], limit: i32) -> bool {
    if r >= scheme.rank() {
        return false;
    }
    let term = &scheme.terms[r];
    let factor = match slot {
        Slot::A => &term.a,
        Slot::B => &term.b,
        Slot::C => &term.c,
    };
    if d.len() != factor.len() {
        return false;
    }
    let rest = add_scaled(factor, d, -1);
    let zero = |v: &[i32]| v.iter().all(|&x| x == 0);
    if zero(d) || zero(&rest) || !within(d, limit) || !within(&rest, limit) {
        return false;
    }
    let mut twin = term.clone();
    match slot {
        Slot::A => {
            scheme.terms[r].a = d.to_vec();
            twin.a = rest;
        }
        Slot::B => {
            scheme.terms[r].b = d.to_vec();
            twin.b = rest;
        }
        Slot::C => {
            scheme.terms[r].c = d.to_vec();
            twin.c = rest;
        }
    }
    scheme.terms.push(twin);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classical333() -> IntScheme {
        IntScheme::classical(3, 3, 3)
    }

    #[test]
    fn shared_sign_variants() {
        assert_eq!(shared_sign(&[1, 0, -2], &[1, 0, -2]), Some(1));
        assert_eq!(shared_sign(&[1, 0, -2], &[-1, 0, 2]), Some(-1));
        assert_eq!(shared_sign(&[1, 0, -2], &[1, 0, 2]), None);
        assert_eq!(
            shared_sign(&[0, 0], &[0, 0]),
            None,
            "zero vector never shares"
        );
    }

    #[test]
    fn flips_preserve_the_tensor() {
        let mut s = classical333();
        // Terms 0 (i=0,p=0,j=0) and 1 (i=0,p=0,j=1) share slot A.
        for variant in [false, true] {
            for negate in [false, true] {
                let mv = FlipMove {
                    r: 0,
                    s: 1,
                    slot: Slot::A,
                    variant,
                    negate,
                };
                let undo = apply_flip(&mut s, mv, 8).expect("terms 0,1 share a");
                assert!(
                    s.is_valid(),
                    "flip variant {variant}/negate {negate} broke the tensor"
                );
                undo_flip(&mut s, undo);
                assert_eq!(s, classical333());
            }
        }
    }

    #[test]
    fn flip_requires_a_shared_slot() {
        let mut s = classical333();
        // Terms 0 (0,0,0) and 13 (1,1,1) share nothing.
        for slot in Slot::ALL {
            assert!(apply_flip(
                &mut s,
                FlipMove {
                    r: 0,
                    s: 13,
                    slot,
                    variant: false,
                    negate: false
                },
                8
            )
            .is_none());
        }
    }

    #[test]
    fn flip_respects_coefficient_limit() {
        let mut s = classical333();
        // limit 0 forbids every non-trivial write.
        assert!(apply_flip(
            &mut s,
            FlipMove {
                r: 0,
                s: 1,
                slot: Slot::A,
                variant: false,
                negate: false
            },
            0
        )
        .is_none());
        assert_eq!(s, classical333());
    }

    #[test]
    fn split_then_reduce_round_trips() {
        let mut s = classical333();
        let d = {
            let mut d = vec![0; 9];
            d[0] = 1;
            d[4] = -1;
            d
        };
        assert!(split(&mut s, 2, Slot::B, &d, 2));
        assert_eq!(s.rank(), 28);
        assert!(s.is_valid());
        // The two halves share slots A and C, so reduction re-merges.
        let removed = reduce_all(&mut s, 2);
        assert_eq!(removed, 1);
        assert_eq!(s.rank(), 27);
        assert!(s.is_valid());
    }

    #[test]
    fn split_rejects_zero_parts() {
        let mut s = classical333();
        let b = s.terms[0].b.clone();
        assert!(!split(&mut s, 0, Slot::B, &b, 2), "rest would be zero");
        assert!(!split(&mut s, 0, Slot::B, &[0; 9], 2), "d is zero");
        assert_eq!(s.rank(), 27);
    }

    #[test]
    fn reduction_merges_duplicate_terms() {
        // A duplicated term shares all slots: the merge folds it into a
        // coefficient-2 output factor, dropping rank by exactly one.
        let mut dup = IntScheme::classical(2, 2, 2);
        let copy = dup.terms[3].clone();
        dup.terms.push(copy);
        assert!(!dup.is_valid(), "duplicated term overcounts");
        let removed = reduce_all(&mut dup, 2);
        assert_eq!(removed, 1);
        assert_eq!(dup.rank(), 8);
    }

    #[test]
    fn reduction_cancels_sign_opposed_pairs() {
        // a⊗b⊗c + (−a)⊗b⊗c: the merged output factor is zero, so both
        // terms vanish and the tensor (which they jointly left intact)
        // survives — rank drops by two.
        let mut s = IntScheme::classical(2, 2, 2);
        let mut neg = s.terms[0].clone();
        neg.a.iter_mut().for_each(|x| *x = -*x);
        s.terms.push(s.terms[0].clone());
        s.terms.push(neg);
        assert!(s.is_valid(), "the appended pair sums to zero");
        let removed = reduce_all(&mut s, 2);
        assert_eq!(removed, 2);
        assert_eq!(s.rank(), 8);
        assert!(s.is_valid());
    }

    #[test]
    fn degenerate_terms_are_swept() {
        let mut s = classical333();
        s.terms[5].c = vec![0; 9];
        s.terms[11].a = vec![0; 9];
        let removed = reduce_all(&mut s, 2);
        assert_eq!(removed, 2);
        assert_eq!(s.rank(), 25);
    }
}
