//! Discretization, polishing, repair, and the restart-driven search.

use crate::als::{als_fit, als_from_random, frob_residual, AlsOptions};
use crate::SearchResult;
use fmm_matrix::Matrix;
use fmm_tensor::linalg::{khatri_rao, ridge_solve};
use fmm_tensor::{matmul_tensor, Decomposition};

/// Snap every entry of `mat` to the nearest small dyadic rational when
/// it is within `tol`; entries smaller than `zero_tol` become zero.
fn snap(mat: &mut Matrix, tol: f64, zero_tol: f64) {
    for x in mat.as_mut_slice() {
        if x.abs() < zero_tol {
            *x = 0.0;
            continue;
        }
        for q in [1.0f64, 2.0, 4.0] {
            let scaled = *x * q;
            if (scaled - scaled.round()).abs() < tol * q {
                *x = scaled.round() / q;
                break;
            }
        }
    }
}

/// Attempt to turn a numerically-converged candidate into an exact
/// discrete algorithm: snap entries toward dyadic rationals, then
/// re-solve each factor exactly (zero regularization) against the
/// other two and snap again, iterating a few rounds.
///
/// Returns the polished decomposition when the final Brent residual is
/// below `1e-10`, `None` otherwise.
pub fn polish_to_exact(cand: &Decomposition, rounds: usize) -> Option<Decomposition> {
    let t = matmul_tensor(cand.m, cand.k, cand.n);
    let x1t = t.unfold1().transpose();
    let x2t = t.unfold2().transpose();
    let x3t = t.unfold3().transpose();
    let mut u = cand.u.clone();
    let mut v = cand.v.clone();
    let mut w = cand.w.clone();

    let mut snap_tol = 0.35;
    for _ in 0..rounds {
        snap(&mut u, snap_tol, 0.12);
        if let Some(vt) = ridge_solve(&khatri_rao(&u, &w), &x2t, 1e-12) {
            v = vt.transpose();
        }
        snap(&mut v, snap_tol, 0.12);
        if let Some(wt) = ridge_solve(&khatri_rao(&u, &v), &x3t, 1e-12) {
            w = wt.transpose();
        }
        snap(&mut w, snap_tol, 0.12);
        if let Some(ut) = ridge_solve(&khatri_rao(&v, &w), &x1t, 1e-12) {
            u = ut.transpose();
        }
        snap_tol *= 0.75;
        if frob_residual(&t, &u, &v, &w) < 1e-10 {
            // Final exact snap of U too.
            snap(&mut u, 1e-6, 1e-8);
            let dec = Decomposition::new(cand.m, cand.k, cand.n, u, v, w);
            if dec.verify(1e-9).is_ok() {
                return Some(dec);
            } else {
                return None;
            }
        }
    }
    let dec = Decomposition::new(cand.m, cand.k, cand.n, u, v, w);
    if dec.verify(1e-9).is_ok() {
        Some(dec)
    } else {
        None
    }
}

/// Repair a hand-entered candidate whose coefficients are close to (but
/// not exactly) a valid algorithm: run ALS initialized at the candidate
/// with mild regularization, then polish to a discrete solution.
///
/// This is the safety net for transcribed literature algorithms — a few
/// sign or placement errors leave the candidate in the basin of the
/// true solution, which ALS then recovers.
pub fn repair(cand: &Decomposition, opts: &AlsOptions) -> Option<SearchResult> {
    let t = matmul_tensor(cand.m, cand.k, cand.n);
    let mut u = cand.u.clone();
    let mut v = cand.v.clone();
    let mut w = cand.w.clone();
    let report = als_fit(&t, &mut u, &mut v, &mut w, opts);
    let fitted = Decomposition::new(cand.m, cand.k, cand.n, u, v, w);
    // Prefer a polished discrete solution; fall back to the raw fit.
    if let Some(polished) = polish_to_exact(&fitted, 10) {
        let residual = polished.residual();
        return Some(SearchResult {
            discrete: polished.is_discrete(1e-9),
            decomposition: polished,
            residual,
            restarts_used: 0,
        });
    }
    if report.converged {
        let residual = fitted.residual();
        return Some(SearchResult {
            discrete: fitted.is_discrete(1e-9),
            decomposition: fitted,
            residual,
            restarts_used: 0,
        });
    }
    None
}

/// Multi-restart search for an exact rank-`rank` algorithm for
/// `⟨m,k,n⟩` (paper §2.3.2). Runs up to `restarts` seeded ALS fits and
/// returns the first that converges and polishes to a verified
/// algorithm; when none polishes discretely, the best converged
/// floating-point solution is returned instead.
pub fn search(
    m: usize,
    k: usize,
    n: usize,
    rank: usize,
    restarts: usize,
    base_seed: u64,
    opts: &AlsOptions,
) -> Option<SearchResult> {
    let mut best_float: Option<(Decomposition, f64, usize)> = None;
    let mut first_converged: Option<usize> = None;
    for attempt in 0..restarts {
        // Once a converged floating-point solution exists, spend at most
        // 100 further restarts hunting for a discrete one.
        if let Some(first) = first_converged {
            if attempt > first + 100 {
                break;
            }
        }
        let seed = base_seed.wrapping_add(attempt as u64);
        let (cand, report) = als_from_random(m, k, n, rank, seed, opts);
        if attempt % 50 == 49 {
            eprintln!(
                "  ...restart {} (best {:.2e})",
                attempt + 1,
                best_float.as_ref().map_or(f64::INFINITY, |(_, r, _)| *r)
            );
        }
        if !report.converged {
            continue;
        }
        first_converged.get_or_insert(attempt);
        if let Some(polished) = polish_to_exact(&cand, 10) {
            let residual = polished.residual();
            return Some(SearchResult {
                discrete: polished.is_discrete(1e-9),
                decomposition: polished,
                residual,
                restarts_used: attempt + 1,
            });
        }
        let res = cand.residual();
        if best_float.as_ref().is_none_or(|(_, r, _)| res < *r) {
            best_float = Some((cand, res, attempt + 1));
        }
    }
    best_float.map(|(dec, residual, restarts_used)| SearchResult {
        discrete: dec.is_discrete(1e-9),
        decomposition: dec,
        residual,
        restarts_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_tensor::compose::classical;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn repair_recovers_perturbed_classical() {
        // Corrupt a few entries of the classical ⟨2,2,2⟩ algorithm and
        // check the repair pipeline restores an exact algorithm.
        let mut cand = classical(2, 2, 2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..3 {
            let i = rng.gen_range(0..cand.u.rows());
            let c = rng.gen_range(0..cand.u.cols());
            cand.u[(i, c)] += 0.2;
        }
        assert!(cand.verify(1e-10).is_err());
        let fixed = repair(&cand, &AlsOptions::default()).expect("repairable");
        assert!(fixed.residual < 1e-9);
        fixed.decomposition.verify(1e-9).unwrap();
    }

    #[test]
    fn polish_rejects_garbage() {
        let mut cand = classical(2, 2, 2);
        // Destroy the structure completely.
        for x in cand.u.as_mut_slice() {
            *x = 0.37;
        }
        assert!(polish_to_exact(&cand, 3).is_none());
    }

    #[test]
    fn search_finds_rank8_222_trivially() {
        let opts = AlsOptions::default();
        let res = search(2, 2, 2, 8, 12, 100, &opts).expect("rank 8 must fit");
        assert!(res.residual < 1e-8, "residual {}", res.residual);
    }
}
