//! `discover-flip`: certified flip-graph scheme discovery.
//!
//! Runs the seeded parallel flip-graph exploration of
//! [`fmm_search::explore`] against one or more base cases and emits
//! every goal-reaching scheme as a `.alg` coefficient file — but only
//! after [`fmm_verify::certify_exact`] has proved all Brent equations
//! identically in ℚ. An uncertified scheme is never written and fails
//! the run; acceptance is by proof, not by a float residual.
//!
//! With no `--base`, the driver runs the two Table-2 gap targets the
//! catalog historically lacked at the paper's ranks:
//! `⟨3,3,3⟩ → rank 23` and `⟨2,3,3⟩ → rank 15`. Outputs land in
//! `crates/algo/data/` by default (picked up by the catalog at the
//! next build) and are reproducible from the seed alone:
//!
//! ```text
//! cargo run --release -p fmm-search --bin discover-flip -- --seed 1
//! cargo run --release -p fmm-search --bin discover-flip -- \
//!     --seed 1 --base 2,2,2 --goal 7 --max-steps 50000 --out /tmp/smoke
//! ```

use fmm_search::{explore, FlipOptions, IntScheme};
use fmm_verify::certify_exact;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    seed: u64,
    targets: Vec<(usize, usize, usize, usize)>,
    walkers: usize,
    max_steps: u64,
    restart_after: u64,
    kick_after: u64,
    headroom: usize,
    coeff_limit: i32,
    start: StartFrom,
    out: PathBuf,
}

/// Where each walk (and restart) begins.
#[derive(Clone, Copy, PartialEq)]
enum StartFrom {
    /// The classical mkn-term scheme — the cold start.
    Classical,
    /// The best scheme the catalog already holds for the base — a warm
    /// start, e.g. hunting ⟨3,3,3⟩:23 from the rank-24 ⟨1,3,3⟩ ⊕ ⟨2,3,3⟩
    /// direct sum instead of descending all 27 ranks from scratch.
    Catalog,
}

fn usage() -> ! {
    eprintln!(
        "usage: discover-flip [--seed S] [--base m,k,n --goal R]... [--walkers W]\n\
         \x20                  [--max-steps N] [--restart-after N] [--kick-after N]\n\
         \x20                  [--headroom H] [--coeff-limit L] [--start classical|catalog]\n\
         \x20                  [--out DIR]\n\
         defaults: the Table-2 gap targets <3,3,3>:23 and <2,3,3>:15 into crates/algo/data"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let defaults = FlipOptions::default();
    let mut args = Args {
        seed: 1,
        targets: Vec::new(),
        walkers: defaults.walkers,
        max_steps: defaults.max_steps,
        restart_after: defaults.restart_after,
        kick_after: defaults.kick_after,
        headroom: defaults.headroom,
        coeff_limit: defaults.coeff_limit,
        start: StartFrom::Classical,
        out: Path::new(env!("CARGO_MANIFEST_DIR")).join("../algo/data"),
    };
    let mut pending_base: Option<(usize, usize, usize)> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--base" => {
                let v = value();
                let dims: Vec<usize> = v
                    .split(',')
                    .map(|t| t.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                let [m, k, n] = dims.as_slice() else { usage() };
                pending_base = Some((*m, *k, *n));
            }
            "--goal" => {
                let goal: usize = value().parse().unwrap_or_else(|_| usage());
                let Some((m, k, n)) = pending_base.take() else {
                    eprintln!("--goal must follow --base");
                    usage();
                };
                args.targets.push((m, k, n, goal));
            }
            "--walkers" => args.walkers = value().parse().unwrap_or_else(|_| usage()),
            "--max-steps" => args.max_steps = value().parse().unwrap_or_else(|_| usage()),
            "--restart-after" => args.restart_after = value().parse().unwrap_or_else(|_| usage()),
            "--kick-after" => args.kick_after = value().parse().unwrap_or_else(|_| usage()),
            "--headroom" => args.headroom = value().parse().unwrap_or_else(|_| usage()),
            "--coeff-limit" => args.coeff_limit = value().parse().unwrap_or_else(|_| usage()),
            "--start" => {
                args.start = match value().as_str() {
                    "classical" => StartFrom::Classical,
                    "catalog" => StartFrom::Catalog,
                    _ => usage(),
                }
            }
            "--out" => args.out = PathBuf::from(value()),
            _ => usage(),
        }
    }
    if pending_base.is_some() {
        eprintln!("--base without a following --goal");
        usage();
    }
    if args.targets.is_empty() {
        args.targets = vec![(3, 3, 3, 23), (2, 3, 3, 15)];
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut failures = 0usize;
    for &(m, k, n, goal) in &args.targets {
        let start = match args.start {
            StartFrom::Classical => None,
            StartFrom::Catalog => {
                match IntScheme::from_decomposition(&fmm_algo::by_base(m, k, n).dec) {
                    Ok(s) => Some(s),
                    Err(e) => {
                        eprintln!("<{m},{k},{n}>: catalog scheme is not integer ({e}); skipping");
                        failures += 1;
                        continue;
                    }
                }
            }
        };
        let opts = FlipOptions {
            seed: args.seed,
            goal,
            walkers: args.walkers,
            max_steps: args.max_steps,
            restart_after: args.restart_after,
            kick_after: args.kick_after,
            headroom: args.headroom,
            coeff_limit: args.coeff_limit,
            start,
            ..FlipOptions::default()
        };
        println!(
            "<{m},{k},{n}> goal rank {goal}: seed {}, {} walkers x {} steps (limit {}, {} start)",
            opts.seed,
            opts.walkers,
            opts.max_steps,
            opts.coeff_limit,
            match opts.start {
                Some(ref s) => format!("catalog rank-{}", s.rank()),
                None => "classical".to_string(),
            }
        );
        let report = explore(m, k, n, &opts);
        println!(
            "  best rank {} (walker {}, {} steps, {} restarts, {} revisits)",
            report.best.rank(),
            report.walker,
            report.steps,
            report.restarts,
            report.revisits
        );
        if !report.reached_goal {
            eprintln!("  MISSED goal {goal}; nothing emitted");
            failures += 1;
            continue;
        }
        // Certify-before-accept: the walker states are valid over ℤ by
        // construction, but emission is gated on the independent exact
        // ℚ proof — a buggy move implementation cannot ship a scheme.
        let dec = report.best.to_decomposition();
        let cert = match certify_exact(&dec) {
            Ok(cert) => cert,
            Err(e) => {
                eprintln!("  UNCERTIFIED scheme (refusing to emit): {e}");
                failures += 1;
                continue;
            }
        };
        println!("  certified: {cert}");
        let comment = format!(
            "flip-graph discovery (fmm-search discover-flip)\n\
             seed {} walker {} steps {} restarts {} coeff-limit {} start {}\n\
             certified exact in Q: {} Brent equations, max denominator {}",
            opts.seed,
            report.walker,
            report.steps,
            report.restarts,
            opts.coeff_limit,
            if args.start == StartFrom::Catalog {
                "catalog"
            } else {
                "classical"
            },
            cert.equations,
            cert.max_denominator,
        );
        let text = fmm_algo::serialize(&dec, Some(&comment));
        let file = args
            .out
            .join(format!("searched_{m}{k}{n}_{}.alg", report.best.rank()));
        if let Err(e) = std::fs::create_dir_all(&args.out) {
            eprintln!("  cannot create {}: {e}", args.out.display());
            failures += 1;
            continue;
        }
        match std::fs::write(&file, text) {
            Ok(()) => println!("  wrote {}", file.display()),
            Err(e) => {
                eprintln!("  cannot write {}: {e}", file.display());
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
