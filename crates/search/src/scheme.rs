//! Exact ℤ-coefficient rank-one schemes — the state space of the
//! flip-graph search.
//!
//! A [`IntScheme`] is a list of rank-one terms `a ⊗ b ⊗ c` with
//! integer factor vectors whose sum must equal the matrix
//! multiplication tensor `T_{⟨m,k,n⟩}` *identically over ℤ* — there are
//! no floats anywhere in the representation, so every state the search
//! visits is exact by construction and the only thing a move can change
//! is the rank, never correctness.
//!
//! The module also provides the canonical-form hash used for
//! visited-set dedup: two schemes that differ only by a permutation of
//! their summands or by the sign relabelings `(a,b,c) → (±a,±b,±c)`
//! with positive sign product (which leave every term's tensor
//! contribution unchanged) hash identically. Terms are sign-normalized
//! so the leading nonzero of `a` and of `b` is positive (the residual
//! sign lands on `c`), and the per-term hashes are combined with a
//! commutative wrapping sum, which makes summand order irrelevant
//! without sorting.

use fmm_matrix::Matrix;
use fmm_tensor::Decomposition;

/// One rank-one term `a ⊗ b ⊗ c` over ℤ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Term {
    /// A-side factor, length `m·k`.
    pub a: Vec<i32>,
    /// B-side factor, length `k·n`.
    pub b: Vec<i32>,
    /// C-side factor, length `m·n`.
    pub c: Vec<i32>,
}

impl Term {
    /// True when any factor is the zero vector — the term contributes
    /// nothing and can be deleted (a rank reduction).
    pub fn is_degenerate(&self) -> bool {
        let zero = |v: &[i32]| v.iter().all(|&x| x == 0);
        zero(&self.a) || zero(&self.b) || zero(&self.c)
    }

    /// Total number of nonzero entries across the three factors.
    pub fn nnz(&self) -> usize {
        self.a
            .iter()
            .chain(&self.b)
            .chain(&self.c)
            .filter(|&&x| x != 0)
            .count()
    }

    /// Largest absolute coefficient across the three factors.
    pub fn max_coeff(&self) -> i32 {
        self.a
            .iter()
            .chain(&self.b)
            .chain(&self.c)
            .map(|x| x.abs())
            .max()
            .unwrap_or(0)
    }

    /// Sign-canonical 64-bit hash: invariant under the four relabelings
    /// `(a,b,c) → (s_a·a, s_b·b, s_c·c)` with `s_a·s_b·s_c = 1`.
    pub fn hash64(&self) -> u64 {
        let lead = |v: &[i32]| v.iter().find(|&&x| x != 0).map_or(1, |&x| x.signum());
        // Multiplying by (pa, pb, pa·pb) has positive sign product and
        // makes the leading nonzeros of a and b positive — a canonical
        // representative of the 4-element sign orbit.
        let pa = lead(&self.a);
        let pb = lead(&self.b);
        let pc = pa * pb;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut feed = |x: i64| {
            h ^= x as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        feed(0xa5);
        self.a.iter().for_each(|&x| feed(i64::from(pa * x)));
        feed(0xb7);
        self.b.iter().for_each(|&x| feed(i64::from(pb * x)));
        feed(0xc9);
        self.c.iter().for_each(|&x| feed(i64::from(pc * x)));
        h
    }
}

/// A candidate `⟨m,k,n⟩` scheme: `Σ_r a_r ⊗ b_r ⊗ c_r = T_{⟨m,k,n⟩}`
/// over ℤ. The rank is the number of terms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntScheme {
    /// Base-case rows of A.
    pub m: usize,
    /// Base-case inner dimension.
    pub k: usize,
    /// Base-case columns of B.
    pub n: usize,
    /// The rank-one terms.
    pub terms: Vec<Term>,
}

impl IntScheme {
    /// The classical `⟨m,k,n⟩` scheme: `m·k·n` terms
    /// `e_{ip} ⊗ e_{pj} ⊗ e_{ij}` — the canonical start state of every
    /// flip-graph walk.
    pub fn classical(m: usize, k: usize, n: usize) -> Self {
        let mut terms = Vec::with_capacity(m * k * n);
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    let mut a = vec![0; m * k];
                    let mut b = vec![0; k * n];
                    let mut c = vec![0; m * n];
                    a[i * k + p] = 1;
                    b[p * n + j] = 1;
                    c[i * n + j] = 1;
                    terms.push(Term { a, b, c });
                }
            }
        }
        IntScheme { m, k, n, terms }
    }

    /// Number of terms (active multiplications).
    pub fn rank(&self) -> usize {
        self.terms.len()
    }

    /// Largest absolute coefficient in the scheme.
    pub fn max_coeff(&self) -> i32 {
        self.terms.iter().map(Term::max_coeff).max().unwrap_or(0)
    }

    /// Reconstruct `Σ_r a_r ⊗ b_r ⊗ c_r` as a flat
    /// `(m·k) × (k·n) × (m·n)` tensor of exact integers.
    pub fn reconstruct(&self) -> Vec<i64> {
        let (da, db, dc) = (self.m * self.k, self.k * self.n, self.m * self.n);
        let mut t = vec![0i64; da * db * dc];
        for term in &self.terms {
            for (ia, &xa) in term.a.iter().enumerate() {
                if xa == 0 {
                    continue;
                }
                for (ib, &xb) in term.b.iter().enumerate() {
                    if xb == 0 {
                        continue;
                    }
                    let ab = i64::from(xa) * i64::from(xb);
                    let base = (ia * db + ib) * dc;
                    for (ic, &xc) in term.c.iter().enumerate() {
                        t[base + ic] += ab * i64::from(xc);
                    }
                }
            }
        }
        t
    }

    /// True iff the scheme equals the matmul tensor identically in ℤ:
    /// `Σ_r a_{(i,p),r}·b_{(p',j),r}·c_{(i',j'),r} = δ_{pp'}δ_{ii'}δ_{jj'}`.
    pub fn is_valid(&self) -> bool {
        self.reconstruct() == matmul_tensor_int(self.m, self.k, self.n)
    }

    /// Canonical-form hash of the whole scheme: invariant under summand
    /// permutation (commutative combine) and per-term sign relabelings
    /// ([`Term::hash64`]); the rank is mixed in so that schemes whose
    /// term multisets hash-collide at different ranks stay distinct.
    pub fn canonical_hash(&self) -> u64 {
        let sum = self
            .terms
            .iter()
            .fold(0u64, |acc, t| acc.wrapping_add(t.hash64()));
        sum ^ (self.rank() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Convert to the float [`Decomposition`] the rest of the workspace
    /// consumes. Every i32 is exactly representable in f64, so the
    /// conversion is lossless and the result certifies in ℚ iff the
    /// scheme is valid over ℤ.
    pub fn to_decomposition(&self) -> Decomposition {
        let r = self.rank();
        let build = |rows: usize, pick: fn(&Term) -> &Vec<i32>| {
            Matrix::from_fn(rows, r, |row, col| f64::from(pick(&self.terms[col])[row]))
        };
        Decomposition::new(
            self.m,
            self.k,
            self.n,
            build(self.m * self.k, |t| &t.a),
            build(self.k * self.n, |t| &t.b),
            build(self.m * self.n, |t| &t.c),
        )
    }

    /// Lift a float decomposition whose entries are all integers into
    /// the exact representation. Errors on fractional or non-finite
    /// entries (e.g. APA border fits) — those have no place in the
    /// flip graph.
    pub fn from_decomposition(dec: &Decomposition) -> Result<Self, String> {
        let lift = |mat: &Matrix, col: usize, rows: usize| -> Result<Vec<i32>, String> {
            (0..rows)
                .map(|row| {
                    let x = mat[(row, col)];
                    if x.is_finite() && x.fract() == 0.0 && x.abs() <= f64::from(i32::MAX) {
                        Ok(x as i32)
                    } else {
                        Err(format!("entry {x} at ({row},{col}) is not a small integer"))
                    }
                })
                .collect()
        };
        let (m, k, n) = dec.base();
        let terms = (0..dec.rank())
            .map(|r| {
                Ok(Term {
                    a: lift(&dec.u, r, m * k)?,
                    b: lift(&dec.v, r, k * n)?,
                    c: lift(&dec.w, r, m * n)?,
                })
            })
            .collect::<Result<_, String>>()?;
        Ok(IntScheme { m, k, n, terms })
    }
}

/// The exact `⟨m,k,n⟩` matmul tensor, flat-indexed like
/// [`IntScheme::reconstruct`].
pub fn matmul_tensor_int(m: usize, k: usize, n: usize) -> Vec<i64> {
    let (da, db, dc) = (m * k, k * n, m * n);
    let mut t = vec![0i64; da * db * dc];
    for i in 0..m {
        for p in 0..k {
            for j in 0..n {
                t[((i * k + p) * db + (p * n + j)) * dc + (i * n + j)] = 1;
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_verify::Certify;

    #[test]
    fn classical_schemes_are_valid() {
        for (m, k, n) in [(1, 1, 1), (2, 2, 2), (2, 3, 3), (3, 3, 3), (3, 3, 6)] {
            let s = IntScheme::classical(m, k, n);
            assert_eq!(s.rank(), m * k * n);
            assert!(s.is_valid(), "classical {m},{k},{n}");
            assert_eq!(s.max_coeff(), 1);
        }
    }

    #[test]
    fn to_decomposition_certifies_in_q() {
        let s = IntScheme::classical(2, 2, 2);
        let dec = s.to_decomposition();
        let cert = dec.certify().expect("classical certifies");
        assert_eq!(cert.rank, 8);
    }

    #[test]
    fn round_trips_through_decomposition() {
        let s = IntScheme::classical(2, 3, 2);
        let back = IntScheme::from_decomposition(&s.to_decomposition()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn from_decomposition_rejects_fractional_entries() {
        let mut dec = IntScheme::classical(2, 2, 2).to_decomposition();
        dec.u[(0, 0)] = 0.5;
        assert!(IntScheme::from_decomposition(&dec).is_err());
    }

    #[test]
    fn strassen_lifts_and_validates() {
        let strassen = fmm_algo::strassen();
        let s = IntScheme::from_decomposition(&strassen).unwrap();
        assert_eq!(s.rank(), 7);
        assert!(s.is_valid());
    }

    #[test]
    fn corrupted_scheme_is_invalid() {
        let mut s = IntScheme::classical(2, 2, 2);
        s.terms[0].c[0] = -1;
        assert!(!s.is_valid());
    }

    #[test]
    fn hash_invariant_under_permutation_and_signs() {
        let mut s = IntScheme::classical(3, 3, 3);
        let h0 = s.canonical_hash();
        s.terms.rotate_left(5);
        assert_eq!(s.canonical_hash(), h0, "summand permutation");
        // Sign relabelings with positive product leave the hash alone.
        for t in &mut s.terms {
            t.a.iter_mut().for_each(|x| *x = -*x);
            t.c.iter_mut().for_each(|x| *x = -*x);
        }
        assert_eq!(s.canonical_hash(), h0, "sign relabeling");
        // An actual change does not.
        s.terms[0].a[0] += 1;
        assert_ne!(s.canonical_hash(), h0);
    }

    #[test]
    fn hash_distinguishes_rank() {
        let s = IntScheme::classical(2, 2, 2);
        let mut shorter = s.clone();
        shorter.terms.pop();
        assert_ne!(s.canonical_hash(), shorter.canonical_hash());
    }

    #[test]
    fn degenerate_terms_detected() {
        let mut s = IntScheme::classical(2, 2, 2);
        assert!(!s.terms[0].is_degenerate());
        s.terms[0].b = vec![0; 4];
        assert!(s.terms[0].is_degenerate());
    }
}
