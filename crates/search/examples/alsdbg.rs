//! Development scratch: probe ALS convergence on small targets.
use fmm_search::{search, AlsOptions};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (m, k, n, rank, restarts): (usize, usize, usize, usize, usize) = if args.len() >= 6 {
        (
            args[1].parse().unwrap(),
            args[2].parse().unwrap(),
            args[3].parse().unwrap(),
            args[4].parse().unwrap(),
            args[5].parse().unwrap(),
        )
    } else {
        (2, 2, 2, 7, 40)
    };
    let opts = AlsOptions::default();
    let t0 = Instant::now();
    match search(m, k, n, rank, restarts, 1000, &opts) {
        Some(res) => println!(
            "⟨{m},{k},{n}⟩ rank {rank}: residual {:.3e} discrete {} restarts {} [{:.1?}]",
            res.residual,
            res.discrete,
            res.restarts_used,
            t0.elapsed()
        ),
        None => println!(
            "⟨{m},{k},{n}⟩ rank {rank}: NOT FOUND in {restarts} restarts [{:.1?}]",
            t0.elapsed()
        ),
    }
}
