//! Development tool: random-restart ALS search for the Table-2 base
//! cases, writing any verified decomposition to `crates/algo/data/` in
//! the workspace's `.alg` text format:
//!
//! ```text
//! m k n rank
//! <mk rows of U, rank columns each, whitespace-separated>
//! <kn rows of V>
//! <mn rows of W>
//! ```
//!
//! Usage: `discover <m> <k> <n> <rank> <restarts> [seed0]`

use fmm_search::{polish_to_exact, search, AlsOptions};
use fmm_tensor::Decomposition;
use std::fmt::Write as _;
use std::time::Instant;

fn serialize(d: &Decomposition) -> String {
    let mut s = String::new();
    writeln!(s, "{} {} {} {}", d.m, d.k, d.n, d.rank()).unwrap();
    for mat in [&d.u, &d.v, &d.w] {
        for i in 0..mat.rows() {
            let row: Vec<String> = (0..mat.cols())
                .map(|j| {
                    let x = mat[(i, j)];
                    if x == x.round() && x.abs() < 1e6 {
                        format!("{}", x as i64)
                    } else {
                        format!("{x:.17e}")
                    }
                })
                .collect();
            writeln!(s, "{}", row.join(" ")).unwrap();
        }
    }
    s
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let mut border = false;
    let mut snap = false;
    args.retain(|a| {
        if a == "--border" {
            border = true;
            false
        } else if a == "--snap" {
            snap = true;
            false
        } else {
            true
        }
    });
    if args.len() < 6 {
        eprintln!("usage: discover [--border] [--snap] <m> <k> <n> <rank> <restarts> [seed0]");
        std::process::exit(2);
    }
    let m: usize = args[1].parse().unwrap();
    let k: usize = args[2].parse().unwrap();
    let n: usize = args[3].parse().unwrap();
    let rank: usize = args[4].parse().unwrap();
    let restarts: usize = args[5].parse().unwrap();
    let seed0: u64 = args.get(6).map_or(1, |s| s.parse().unwrap());

    let mut opts = AlsOptions::default();
    if snap {
        opts.snap_every = 150;
        opts.max_sweeps = 2500;
    }
    if border {
        // Border-rank (APA) fit: accept a small-but-nonzero residual and
        // write the best floating-point instantiation found.
        opts.target_residual = 2e-3;
        opts.max_sweeps = 6000;
        let mut best: Option<fmm_tensor::Decomposition> = None;
        let mut best_res = f64::INFINITY;
        for attempt in 0..restarts {
            let (cand, report) =
                fmm_search::als_from_random(m, k, n, rank, seed0 + attempt as u64, &opts);
            if report.residual < best_res {
                best_res = report.residual;
                best = Some(cand);
                eprintln!("  attempt {attempt}: residual {best_res:.3e}");
            }
            if best_res < opts.target_residual {
                break;
            }
        }
        if let Some(dec) = best {
            let path = format!("crates/algo/data/apa_{m}{k}{n}_{rank}.alg");
            let comment = format!("# APA border-rank fit, residual {best_res:.3e}\n");
            std::fs::write(&path, comment + &serialize(&dec)).unwrap();
            println!("APA ⟨{m},{k},{n}⟩ rank {rank}: residual {best_res:.3e} → wrote {path}");
        }
        return;
    }
    let t0 = Instant::now();
    let res = search(m, k, n, rank, restarts, seed0, &opts);
    match res {
        Some(r) if r.residual < 1e-9 => {
            let polished = polish_to_exact(&r.decomposition, 12).unwrap_or(r.decomposition);
            let discrete = polished.is_discrete(1e-9);
            println!(
                "FOUND ⟨{m},{k},{n}⟩ rank {rank}: residual {:.3e} discrete {} after {} restarts [{:.1?}]",
                polished.residual(),
                discrete,
                r.restarts_used,
                t0.elapsed()
            );
            let path = format!("crates/algo/data/searched_{m}{k}{n}_{rank}.alg");
            std::fs::write(&path, serialize(&polished)).unwrap();
            println!("wrote {path}");
        }
        Some(r) => {
            println!(
                "best float residual {:.3e} after {} restarts (not accepted) [{:.1?}]",
                r.residual,
                r.restarts_used,
                t0.elapsed()
            );
        }
        None => println!("NOT FOUND in {restarts} restarts [{:.1?}]", t0.elapsed()),
    }
}
