//! Development tool: verify (and if needed, repair) a hand-transcribed
//! Laderman ⟨3,3,3⟩ rank-23 candidate, then print it as Rust literals.

use fmm_matrix::Matrix;
use fmm_search::{repair, AlsOptions};
use fmm_tensor::Decomposition;

/// One product definition: the (A-entry, coef) and (B-entry, coef)
/// lists forming its two linear combinations. Entries are 1-indexed
/// (i,j) pairs.
type Product = (Vec<(usize, usize, f64)>, Vec<(usize, usize, f64)>);

/// Build U,V,W from product definitions; each output C-entry lists
/// (product index, coef).
fn build(
    products: &[Product],
    outputs: &[Vec<(usize, f64)>],
    m: usize,
    k: usize,
    n: usize,
) -> Decomposition {
    let r = products.len();
    let mut u = Matrix::zeros(m * k, r);
    let mut v = Matrix::zeros(k * n, r);
    let mut w = Matrix::zeros(m * n, r);
    for (c, (aterms, bterms)) in products.iter().enumerate() {
        for &(i, j, coef) in aterms {
            u[((i - 1) * k + (j - 1), c)] = coef;
        }
        for &(i, j, coef) in bterms {
            v[((i - 1) * n + (j - 1), c)] = coef;
        }
    }
    for (idx, combo) in outputs.iter().enumerate() {
        for &(p, coef) in combo {
            w[(idx, p - 1)] = coef;
        }
    }
    Decomposition::new(m, k, n, u, v, w)
}

fn a(i: usize, j: usize, c: f64) -> (usize, usize, f64) {
    (i, j, c)
}

fn print_matrix(name: &str, m: &Matrix) {
    println!("let {name} = Matrix::from_rows(&[");
    for i in 0..m.rows() {
        let row: Vec<String> = (0..m.cols()).map(|j| format!("{:.1}", m[(i, j)])).collect();
        println!("    &[{}],", row.join(", "));
    }
    println!("]);");
}

fn main() {
    // Best-recall transcription of Laderman (1976), 23 products.
    let products: Vec<Product> = vec![
        // m1 = (a11 + a12 + a13 - a21 - a22 - a32 - a33) b22
        (
            vec![
                a(1, 1, 1.0),
                a(1, 2, 1.0),
                a(1, 3, 1.0),
                a(2, 1, -1.0),
                a(2, 2, -1.0),
                a(3, 2, -1.0),
                a(3, 3, -1.0),
            ],
            vec![a(2, 2, 1.0)],
        ),
        // m2 = (a11 - a21)(-b12 + b22)
        (
            vec![a(1, 1, 1.0), a(2, 1, -1.0)],
            vec![a(1, 2, -1.0), a(2, 2, 1.0)],
        ),
        // m3 = a22 (-b11 + b21 + b22 - b23 - b31)   [uncertain]
        (
            vec![a(2, 2, 1.0)],
            vec![
                a(1, 1, -1.0),
                a(2, 1, 1.0),
                a(2, 2, 1.0),
                a(2, 3, -1.0),
                a(3, 1, -1.0),
            ],
        ),
        // m4 = (-a11 + a21 + a22)(b11 - b12 + b22)
        (
            vec![a(1, 1, -1.0), a(2, 1, 1.0), a(2, 2, 1.0)],
            vec![a(1, 1, 1.0), a(1, 2, -1.0), a(2, 2, 1.0)],
        ),
        // m5 = (a21 + a22)(-b11 + b12)
        (
            vec![a(2, 1, 1.0), a(2, 2, 1.0)],
            vec![a(1, 1, -1.0), a(1, 2, 1.0)],
        ),
        // m6 = a11 b11
        (vec![a(1, 1, 1.0)], vec![a(1, 1, 1.0)]),
        // m7 = (-a11 + a31 + a32)(b11 - b13 + b23)
        (
            vec![a(1, 1, -1.0), a(3, 1, 1.0), a(3, 2, 1.0)],
            vec![a(1, 1, 1.0), a(1, 3, -1.0), a(2, 3, 1.0)],
        ),
        // m8 = (-a11 + a31)(b13 - b23)
        (
            vec![a(1, 1, -1.0), a(3, 1, 1.0)],
            vec![a(1, 3, 1.0), a(2, 3, -1.0)],
        ),
        // m9 = (a31 + a32)(-b11 + b13)
        (
            vec![a(3, 1, 1.0), a(3, 2, 1.0)],
            vec![a(1, 1, -1.0), a(1, 3, 1.0)],
        ),
        // m10 = (a11 + a12 + a13 - a22 - a23 - a31 - a32) b23
        (
            vec![
                a(1, 1, 1.0),
                a(1, 2, 1.0),
                a(1, 3, 1.0),
                a(2, 2, -1.0),
                a(2, 3, -1.0),
                a(3, 1, -1.0),
                a(3, 2, -1.0),
            ],
            vec![a(2, 3, 1.0)],
        ),
        // m11 = a32 (-b11 + b21 + b23 - b31 - b33)   [uncertain]
        (
            vec![a(3, 2, 1.0)],
            vec![
                a(1, 1, -1.0),
                a(2, 1, 1.0),
                a(2, 3, 1.0),
                a(3, 1, -1.0),
                a(3, 3, -1.0),
            ],
        ),
        // m12 = (-a13 + a32 + a33)(b22 + b31 - b32)
        (
            vec![a(1, 3, -1.0), a(3, 2, 1.0), a(3, 3, 1.0)],
            vec![a(2, 2, 1.0), a(3, 1, 1.0), a(3, 2, -1.0)],
        ),
        // m13 = (a13 - a33)(b22 - b32)
        (
            vec![a(1, 3, 1.0), a(3, 3, -1.0)],
            vec![a(2, 2, 1.0), a(3, 2, -1.0)],
        ),
        // m14 = a13 b31
        (vec![a(1, 3, 1.0)], vec![a(3, 1, 1.0)]),
        // m15 = (a32 + a33)(-b31 + b32)
        (
            vec![a(3, 2, 1.0), a(3, 3, 1.0)],
            vec![a(3, 1, -1.0), a(3, 2, 1.0)],
        ),
        // m16 = (-a13 + a22 + a23)(b23 + b31 - b33)
        (
            vec![a(1, 3, -1.0), a(2, 2, 1.0), a(2, 3, 1.0)],
            vec![a(2, 3, 1.0), a(3, 1, 1.0), a(3, 3, -1.0)],
        ),
        // m17 = (a13 - a23)(b23 - b33)
        (
            vec![a(1, 3, 1.0), a(2, 3, -1.0)],
            vec![a(2, 3, 1.0), a(3, 3, -1.0)],
        ),
        // m18 = (a22 + a23)(-b31 + b33)
        (
            vec![a(2, 2, 1.0), a(2, 3, 1.0)],
            vec![a(3, 1, -1.0), a(3, 3, 1.0)],
        ),
        // m19 = a12 b21
        (vec![a(1, 2, 1.0)], vec![a(2, 1, 1.0)]),
        // m20 = a23 b32
        (vec![a(2, 3, 1.0)], vec![a(3, 2, 1.0)]),
        // m21 = a21 b13
        (vec![a(2, 1, 1.0)], vec![a(1, 3, 1.0)]),
        // m22 = a31 b12
        (vec![a(3, 1, 1.0)], vec![a(1, 2, 1.0)]),
        // m23 = a33 b33
        (vec![a(3, 3, 1.0)], vec![a(3, 3, 1.0)]),
    ];

    // C outputs in row-major order: c11 c12 c13 c21 c22 c23 c31 c32 c33
    let outputs: Vec<Vec<(usize, f64)>> = vec![
        vec![(6, 1.0), (14, 1.0), (19, 1.0)], // c11
        vec![
            (1, 1.0),
            (4, 1.0),
            (5, 1.0),
            (6, 1.0),
            (12, 1.0),
            (14, 1.0),
            (15, 1.0),
        ], // c12
        vec![
            (6, 1.0),
            (7, 1.0),
            (9, 1.0),
            (10, 1.0),
            (12, 1.0),
            (14, 1.0),
            (16, 1.0),
            (18, 1.0),
        ], // c13
        vec![
            (2, 1.0),
            (3, 1.0),
            (4, 1.0),
            (6, 1.0),
            (14, 1.0),
            (16, 1.0),
            (17, 1.0),
        ], // c21
        vec![
            (2, 1.0),
            (4, 1.0),
            (5, 1.0),
            (6, 1.0),
            (14, 1.0),
            (16, 1.0),
            (17, 1.0),
            (18, 1.0),
        ], // c22
        vec![(14, 1.0), (16, 1.0), (17, 1.0), (18, 1.0), (21, 1.0)], // c23
        vec![
            (6, 1.0),
            (7, 1.0),
            (8, 1.0),
            (11, 1.0),
            (12, 1.0),
            (13, 1.0),
            (14, 1.0),
        ], // c31
        vec![(12, 1.0), (13, 1.0), (14, 1.0), (15, 1.0), (22, 1.0)], // c32
        vec![(6, 1.0), (7, 1.0), (8, 1.0), (9, 1.0), (14, 1.0), (23, 1.0)], // c33
    ];

    let cand = build(&products, &outputs, 3, 3, 3);
    let res = cand.residual();
    println!("candidate residual: {res:.6e}");
    {
        let exact = fmm_tensor::matmul_tensor(3, 3, 3);
        let recon = cand.reconstruct();
        for i in 0..9 {
            for j in 0..9 {
                for k in 0..9 {
                    let d = recon.get(i, j, k) - exact.get(i, j, k);
                    if d.abs() > 1e-9 {
                        // decode: i = A(r,c) index, j = B, k = C
                        println!(
                            "violation A({},{}) B({},{}) C({},{}): got {} want {}",
                            i / 3 + 1,
                            i % 3 + 1,
                            j / 3 + 1,
                            j % 3 + 1,
                            k / 3 + 1,
                            k % 3 + 1,
                            recon.get(i, j, k),
                            exact.get(i, j, k)
                        );
                    }
                }
            }
        }
    }
    if res < 1e-12 {
        println!("candidate is exact!");
        return;
    }
    // Stage 1: trust U, alternately exact-solve V and W from the candidate.
    {
        let t = fmm_tensor::matmul_tensor(3, 3, 3);
        let x2t = t.unfold2().transpose();
        let x3t = t.unfold3().transpose();
        let u = cand.u.clone();
        let mut v = cand.v.clone();
        let mut w = cand.w.clone();
        for _ in 0..200 {
            if let Some(vt) = fmm_tensor::linalg::ridge_solve(
                &fmm_tensor::linalg::khatri_rao(&u, &w),
                &x2t,
                1e-12,
            ) {
                v = vt.transpose();
            }
            if let Some(wt) = fmm_tensor::linalg::ridge_solve(
                &fmm_tensor::linalg::khatri_rao(&u, &v),
                &x3t,
                1e-12,
            ) {
                w = wt.transpose();
            }
        }
        let d2 = fmm_tensor::Decomposition::new(3, 3, 3, u, v, w);
        println!("freeze-U residual: {:.3e}", d2.residual());
        if d2.residual() < 1e-8 {
            let mut d3 = d2.clone();
            d3.round_entries(1e-6);
            println!("rounded residual: {:.3e}", d3.residual());
            if d3.residual() < 1e-10 {
                print_matrix("u", &d3.u);
                print_matrix("v", &d3.v);
                print_matrix("w", &d3.w);
                return;
            }
        }
    }
    // Stage 2: single-entry discrete repair on U (or V): perturb one
    // entry by ±1, freeze that factor, exact-ALS the other two, and see
    // whether the residual collapses.
    {
        let t = fmm_tensor::matmul_tensor(3, 3, 3);
        let x1t = t.unfold1().transpose();
        let x2t = t.unfold2().transpose();
        let x3t = t.unfold3().transpose();
        let complete_from_u = |u: &fmm_matrix::Matrix,
                               v0: &fmm_matrix::Matrix,
                               w0: &fmm_matrix::Matrix,
                               sweeps: usize| {
            let mut v = v0.clone();
            let mut w = w0.clone();
            for _ in 0..sweeps {
                if let Some(vt) = fmm_tensor::linalg::ridge_solve(
                    &fmm_tensor::linalg::khatri_rao(u, &w),
                    &x2t,
                    1e-12,
                ) {
                    v = vt.transpose();
                }
                if let Some(wt) = fmm_tensor::linalg::ridge_solve(
                    &fmm_tensor::linalg::khatri_rao(u, &v),
                    &x3t,
                    1e-12,
                ) {
                    w = wt.transpose();
                }
            }
            (fmm_search::frob_residual(&t, u, &v, &w), v, w)
        };
        let complete_from_v = |v: &fmm_matrix::Matrix,
                               u0: &fmm_matrix::Matrix,
                               w0: &fmm_matrix::Matrix,
                               sweeps: usize| {
            let mut u = u0.clone();
            let mut w = w0.clone();
            for _ in 0..sweeps {
                if let Some(ut) = fmm_tensor::linalg::ridge_solve(
                    &fmm_tensor::linalg::khatri_rao(v, &w),
                    &x1t,
                    1e-12,
                ) {
                    u = ut.transpose();
                }
                if let Some(wt) = fmm_tensor::linalg::ridge_solve(
                    &fmm_tensor::linalg::khatri_rao(&u, v),
                    &x3t,
                    1e-12,
                ) {
                    w = wt.transpose();
                }
            }
            (fmm_search::frob_residual(&t, &u, v, &w), u, w)
        };
        let mut best: Option<(f64, fmm_tensor::Decomposition, String)> = None;
        for row in 0..9 {
            for col in 0..23 {
                for delta in [-1.0f64, 1.0, -2.0, 2.0] {
                    let mut u = cand.u.clone();
                    u[(row, col)] += delta;
                    let (res, v, w) = complete_from_u(&u, &cand.v, &cand.w, 40);
                    if res < 1e-6 {
                        let d = fmm_tensor::Decomposition::new(3, 3, 3, u, v, w);
                        let tag = format!("U[{row},{col}] += {delta}");
                        if best.as_ref().is_none_or(|(b, _, _)| res < *b) {
                            best = Some((res, d, tag));
                        }
                    }
                    let mut v2 = cand.v.clone();
                    v2[(row, col)] += delta;
                    let (res2, u2, w2) = complete_from_v(&v2, &cand.u, &cand.w, 40);
                    if res2 < 1e-6 {
                        let d = fmm_tensor::Decomposition::new(3, 3, 3, u2, v2, w2);
                        let tag = format!("V[{row},{col}] += {delta}");
                        if best.as_ref().is_none_or(|(b, _, _)| res2 < *b) {
                            best = Some((res2, d, tag));
                        }
                    }
                }
            }
        }
        match best {
            Some((res, mut d, tag)) => {
                println!("single-entry repair: {tag} → residual {res:.3e}");
                d.round_entries(1e-6);
                println!("rounded residual: {:.3e}", d.residual());
                if d.residual() < 1e-10 {
                    print_matrix("u", &d.u);
                    print_matrix("v", &d.v);
                    print_matrix("w", &d.w);
                    return;
                }
            }
            None => println!("no single-entry repair found"),
        }
    }
    println!("repairing…");
    let opts = AlsOptions {
        max_sweeps: 6000,
        reg_start: 2e-3,
        snap_every: 200,
        ..Default::default()
    };
    match repair(&cand, &opts) {
        Some(fixed) => {
            println!(
                "repaired: residual {:.3e}, discrete {}",
                fixed.residual, fixed.discrete
            );
            let d = fixed.decomposition;
            print_matrix("u", &d.u);
            print_matrix("v", &d.v);
            print_matrix("w", &d.w);
        }
        None => println!("repair FAILED"),
    }
}
