//! Engine integration tests: the concurrent multiply service must be
//! bit-for-bit consistent with the plan/execute API it wraps, keep its
//! LRU plan cache and workspace pool honest, and serve correct results
//! for any shape at any pool width.
//!
//! These exercise the root-facade re-exports on purpose: everything is
//! imported from `fast_matmul::{...}` directly.

use fast_matmul::gemm::naive_gemm;
use fast_matmul::matrix::{max_abs_diff, Matrix};
use fast_matmul::{EngineError, FmmEngine, Workspace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn random_problem(m: usize, k: usize, n: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    (
        Matrix::random(m, k, &mut rng),
        Matrix::random(k, n, &mut rng),
    )
}

fn reference(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
    c
}

/// The acceptance stress test: ≥4 client OS threads hammer one engine
/// with a mixed-shape stream through both the sync (`multiply`) and
/// async (`submit` + `wait`) paths, and every single result must be
/// bitwise identical to the same cached `Plan` executed one-at-a-time
/// in a single-threaded pool. (The schedule fixes each output
/// element's evaluation order, so which worker ran what must not
/// change one bit — `tests/runtime_parallel.rs` establishes that for
/// one plan; this extends it across the serving layer.)
#[test]
fn concurrent_mixed_shape_submits_match_sequential_plan_execute_bitwise() {
    let shapes = [(96, 96, 96), (64, 128, 32), (100, 80, 60), (33, 45, 27)];
    let engine = FmmEngine::builder().threads(4).build().unwrap();

    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let mut problems: Vec<(Matrix, Matrix)> = Vec::new();
    let mut references: Vec<Matrix> = Vec::new();
    for (i, &(m, k, n)) in shapes.iter().enumerate() {
        let (a, b) = random_problem(m, k, n, 100 + i as u64);
        // The *same* compiled plan the engine will serve from its
        // cache, executed sequentially.
        let plan = engine.plan_for(m, k, n).unwrap();
        let mut c = Matrix::zeros(m, n);
        let mut ws = Workspace::for_plan(&plan);
        single.install(|| plan.execute(&a, &b, &mut c, &mut ws));
        problems.push((a, b));
        references.push(c);
    }
    let problems = Arc::new(problems);
    let references = Arc::new(references);

    const CLIENTS: usize = 4;
    const ROUNDS: usize = 8;
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let engine = engine.clone();
            let problems = Arc::clone(&problems);
            let references = Arc::clone(&references);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let idx = (client + round) % problems.len();
                    let (a, b) = &problems[idx];
                    let got = if round % 2 == 0 {
                        engine.multiply(a, b).unwrap()
                    } else {
                        engine.submit(a.clone(), b.clone()).wait().unwrap()
                    };
                    assert_eq!(
                        got,
                        references[idx],
                        "client {client} round {round} shape {:?} diverged from \
                         sequential Plan::execute",
                        problems[idx].0.shape()
                    );
                }
            });
        }
    });

    let stats = engine.stats();
    assert_eq!(stats.multiplies, (CLIENTS * ROUNDS) as u64);
    assert_eq!(
        stats.plan_cache_misses,
        shapes.len() as u64,
        "each shape plans exactly once (plan_for warmed the cache)"
    );
    assert_eq!(stats.plan_cache_hits, (CLIENTS * ROUNDS) as u64);
}

/// Acceptance: steady-state serving is zero-alloc. After warm-up,
/// repeated multiplies on a cached shape must be all cache hits and all
/// workspace reuses, with no new arenas created.
#[test]
fn steady_state_serving_allocates_no_new_arenas() {
    let engine = FmmEngine::builder().threads(2).build().unwrap();
    let (a, b) = random_problem(96, 96, 96, 9);
    let mut c = Matrix::zeros(96, 96);
    engine.multiply_into(&a, &b, &mut c).unwrap(); // warm-up
    let warm = engine.stats();
    for _ in 0..10 {
        engine.multiply_into(&a, &b, &mut c).unwrap();
    }
    let steady = engine.stats();
    assert_eq!(
        steady.plan_cache_misses, warm.plan_cache_misses,
        "no re-planning after warm-up"
    );
    assert_eq!(steady.plan_cache_hits, warm.plan_cache_hits + 10);
    assert_eq!(
        steady.workspaces_created, warm.workspaces_created,
        "no new arenas after warm-up"
    );
    assert_eq!(
        steady.workspaces_reused,
        warm.workspaces_reused + 10,
        "every steady-state run reuses a pooled arena as-is"
    );
}

/// Acceptance: the f32 twin of the zero-alloc steady state. An
/// `FmmEngine<f32>` must show the exact same cache/arena discipline —
/// all hits, all workspace reuses, no new arenas — and its results must
/// match the f32 classical reference.
#[test]
fn f32_steady_state_serving_allocates_no_new_arenas() {
    use fast_matmul::matrix::DenseMatrix;
    let engine = FmmEngine::<f32>::builder().threads(2).build().unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let a = DenseMatrix::<f32>::random(96, 96, &mut rng);
    let b = DenseMatrix::<f32>::random(96, 96, &mut rng);
    let mut c = DenseMatrix::<f32>::zeros(96, 96);
    engine.multiply_into(&a, &b, &mut c).unwrap(); // warm-up
    let warm = engine.stats();
    for _ in 0..10 {
        engine.multiply_into(&a, &b, &mut c).unwrap();
    }
    let steady = engine.stats();
    assert_eq!(
        steady.plan_cache_misses, warm.plan_cache_misses,
        "no re-planning after warm-up (f32)"
    );
    assert_eq!(steady.plan_cache_hits, warm.plan_cache_hits + 10);
    assert_eq!(
        steady.workspaces_created, warm.workspaces_created,
        "no new arenas after warm-up (f32)"
    );
    assert_eq!(
        steady.workspaces_reused,
        warm.workspaces_reused + 10,
        "every steady-state run reuses a pooled arena as-is (f32)"
    );
    // Correctness of what was served, against the f32 naive oracle.
    let mut want = DenseMatrix::<f32>::zeros(96, 96);
    naive_gemm(1.0f32, a.as_ref(), b.as_ref(), 0.0f32, want.as_mut());
    let d = max_abs_diff(&want.as_ref(), &c.as_ref()).unwrap();
    assert!(d < 1e-3, "f32 served result off by {d}");
}

/// LRU semantics across shapes: a recently-hit plan survives an insert
/// beyond capacity; the least-recently-used one is evicted and must
/// re-plan on its next request.
#[test]
fn plan_cache_lru_eviction_and_reuse() {
    let engine = FmmEngine::builder()
        .threads(1)
        .cache_capacity(2)
        .build()
        .unwrap();
    let serve = |n: usize, seed: u64| {
        let (a, b) = random_problem(n, n, n, seed);
        engine.multiply(&a, &b).unwrap();
    };
    serve(32, 1); // miss → {32}
    serve(32, 2); // hit
    serve(40, 3); // miss → {32, 40}
    serve(32, 4); // hit: 32 most recent
    serve(48, 5); // miss → evicts 40, {32, 48}
    let s = engine.stats();
    assert_eq!(s.plan_cache_misses, 3);
    assert_eq!(s.plan_cache_hits, 2);
    assert_eq!(s.plan_cache_evictions, 1);
    assert_eq!(s.plans_cached, 2);

    serve(32, 6); // survived the eviction → hit
    assert_eq!(engine.stats().plan_cache_hits, 3);
    serve(40, 7); // was evicted → miss again
    let s = engine.stats();
    assert_eq!(s.plan_cache_misses, 4);
    assert!(s.plan_cache_evictions >= 2);
}

#[test]
fn submit_batch_of_mixed_shapes_is_correct_per_entry() {
    let engine = FmmEngine::builder().threads(2).build().unwrap();
    let shapes = [(48, 64, 32), (80, 80, 80), (32, 96, 48), (57, 41, 23)];
    let problems: Vec<(Matrix, Matrix)> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(m, k, n))| random_problem(m, k, n, 200 + i as u64))
        .collect();
    let handles = engine.submit_batch(problems.clone());
    for ((a, b), handle) in problems.iter().zip(handles) {
        assert_eq!(a.shape().1, b.shape().0);
        let got = handle.wait().unwrap();
        let want = reference(a, b);
        let d = max_abs_diff(&want.as_ref(), &got.as_ref()).unwrap();
        assert!(d < 1e-9 * a.cols() as f64, "batch entry diff {d}");
    }
}

/// Dropping the engine with submits in flight must not lose (or
/// poison) them: the detached jobs own the engine internals via `Arc`,
/// and the pool tolerates being dropped from its own worker.
#[test]
fn engine_dropped_with_submits_in_flight_still_delivers() {
    let engine = FmmEngine::builder().threads(2).build().unwrap();
    let (a, b) = random_problem(64, 64, 64, 5);
    let want = reference(&a, &b);
    let handles: Vec<_> = (0..4)
        .map(|_| engine.submit(a.clone(), b.clone()))
        .collect();
    drop(engine);
    for handle in handles {
        let got = handle.wait().unwrap();
        let d = max_abs_diff(&want.as_ref(), &got.as_ref()).unwrap();
        assert!(d < 1e-9, "post-drop result diff {d}");
    }
}

#[test]
fn shape_errors_surface_through_both_paths() {
    let engine = FmmEngine::builder().threads(1).build().unwrap();
    let a = Matrix::zeros(8, 9);
    let b = Matrix::zeros(10, 7);
    assert!(matches!(
        engine.multiply(&a, &b),
        Err(EngineError::InnerDimMismatch {
            a_cols: 9,
            b_rows: 10
        })
    ));
    assert!(matches!(
        engine.submit(a, b).wait(),
        Err(EngineError::InnerDimMismatch { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sweep shapes × pool widths: whatever the engine auto-plans for a
    /// shape, at any width, must match the classical reference.
    #[test]
    fn engine_matches_classical_over_shapes_and_widths(
        m in 1usize..100,
        k in 1usize..100,
        n in 1usize..100,
        width in 1usize..5,
        seed in 0u64..1000,
    ) {
        let engine = FmmEngine::builder().threads(width).build().unwrap();
        let (a, b) = random_problem(m, k, n, seed);
        let got = engine.multiply(&a, &b).unwrap();
        let want = reference(&a, &b);
        let d = max_abs_diff(&want.as_ref(), &got.as_ref()).unwrap();
        prop_assert!(d < 1e-10 * (k as f64 + 1.0), "diff {d} at {m}x{k}x{n} width {width}");
        // And a second serve of the same shape is a cache hit that
        // reuses the pooled arena.
        let again = engine.multiply(&a, &b).unwrap();
        prop_assert!(again == got, "repeat serve changed bits");
        let s = engine.stats();
        prop_assert!(s.plan_cache_hits >= 1, "second serve must hit the cache");
        prop_assert!(s.workspaces_reused >= 1, "second serve must reuse the arena");
    }
}
