//! Smoke tests over every `.alg` coefficient file embedded by
//! `crates/algo/build.rs`: each must parse, carry consistent
//! (m,k,n)/rank dimensions, satisfy the Brent equations (APA files
//! excepted — they are exact only in the λ → 0 limit), and multiply a
//! random matrix to the `tests/correctness.rs` tolerance.

use fast_matmul::algo;
use fast_matmul::core::{FastMul, Options};
use fast_matmul::matrix::{max_abs_diff, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn catalog_ships_at_least_strassen() {
    let names: Vec<&str> = algo::embedded_files().iter().map(|(n, _)| *n).collect();
    assert!(
        names.contains(&"strassen_222.alg"),
        "strassen_222.alg missing from embedded catalog: {names:?}"
    );
}

#[test]
fn every_embedded_file_parses_with_consistent_dimensions() {
    for (name, text) in algo::embedded_files() {
        let dec = algo::parse(text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        let (m, k, n) = dec.base();
        let rank = dec.rank();
        assert!(
            m > 0 && k > 0 && n > 0,
            "{name}: degenerate base {m},{k},{n}"
        );
        assert!(rank > 0, "{name}: zero rank");
        assert!(
            rank <= m * k * n,
            "{name}: rank {rank} exceeds classical {}",
            m * k * n
        );
        assert_eq!(dec.u.rows(), m * k, "{name}: U rows");
        assert_eq!(dec.v.rows(), k * n, "{name}: V rows");
        assert_eq!(dec.w.rows(), m * n, "{name}: W rows");
        assert_eq!(dec.u.cols(), rank, "{name}: U cols");
        assert_eq!(dec.v.cols(), rank, "{name}: V cols");
        assert_eq!(dec.w.cols(), rank, "{name}: W cols");
    }
}

#[test]
fn every_exact_embedded_file_satisfies_brent_and_multiplies() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut checked = 0;
    for (name, text) in algo::embedded_files() {
        if name.starts_with("apa_") {
            continue; // border-rank files are exact only as λ → 0
        }
        let dec = algo::parse(text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        dec.verify(algo::EXACT_TOL)
            .unwrap_or_else(|e| panic!("{name}: Brent equations failed: {e}"));

        // One recursive step on a problem a few multiples of the base,
        // plus a ragged size to exercise peeling.
        let (m, k, n) = dec.base();
        for (p, q, r) in [(4 * m, 4 * k, 4 * n), (4 * m + 1, 4 * k + 1, 4 * n + 1)] {
            let a = Matrix::random(p, q, &mut rng);
            let b = Matrix::random(q, r, &mut rng);
            let mut want = Matrix::zeros(p, r);
            fast_matmul::gemm::naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, want.as_mut());
            let got = FastMul::new(
                &dec,
                Options {
                    steps: 1,
                    ..Options::default()
                },
            )
            .multiply(&a, &b);
            let d = max_abs_diff(&want.as_ref(), &got.as_ref()).unwrap();
            assert!(d < 1e-9 * q as f64, "{name} on {p}x{q}x{r}: diff {d}");
        }
        checked += 1;
    }
    assert!(checked > 0, "no exact embedded algorithms were checked");
}
