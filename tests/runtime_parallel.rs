//! Work-stealing runtime integration tests at the executor level: the
//! BFS/HYBRID schemes must produce bit-identical results at every pool
//! width, report real steals when several workers participate, and
//! survive panicking tasks without leaking scheduler state.

use fast_matmul::algo;
use fast_matmul::core::{Planner, Scheme, Workspace};
use fast_matmul::matrix::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool")
}

fn run_in_pool(threads: usize, scheme: Scheme, p: usize, q: usize, r: usize, seed: u64) -> Matrix {
    let plan = Planner::new()
        .shape(p, q, r)
        .algorithm(&algo::strassen())
        .steps(2)
        .scheme(scheme)
        .plan()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Matrix::random(p, q, &mut rng);
    let b = Matrix::random(q, r, &mut rng);
    let mut c = Matrix::zeros(p, r);
    let mut ws = Workspace::for_plan(&plan);
    pool(threads).install(|| plan.execute(&a, &b, &mut c, &mut ws));
    c
}

/// The schedule assigns every output element a fixed evaluation order
/// (disjoint per-task buffers, k-loop never split), so which worker
/// executes which task must not change a single bit of the result.
#[test]
fn bfs_results_are_bitwise_identical_across_pool_widths() {
    for scheme in [Scheme::Bfs, Scheme::Hybrid, Scheme::Dfs] {
        let reference = run_in_pool(1, scheme, 96, 96, 96, 42);
        for threads in [2, 8] {
            let got = run_in_pool(threads, scheme, 96, 96, 96, 42);
            assert_eq!(
                got, reference,
                "{scheme:?} at {threads} workers diverged from 1 worker"
            );
        }
    }
}

#[test]
fn bfs_with_four_workers_reports_steals() {
    let plan = Planner::new()
        .shape(256, 256, 256)
        .algorithm(&algo::strassen())
        .steps(2)
        .scheme(Scheme::Bfs)
        .plan()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let a = Matrix::random(256, 256, &mut rng);
    let b = Matrix::random(256, 256, &mut rng);
    let mut c = Matrix::zeros(256, 256);
    let mut ws = Workspace::for_plan(&plan);
    let tp = pool(4);
    let mut total_stolen = 0u64;
    let mut threads_seen = 0u32;
    // A few attempts absorb scheduling jitter on small machines; with
    // 49 leaf tasks and 4 workers, steals and multi-thread execution
    // are effectively certain.
    for _ in 0..5 {
        let stats = tp.install(|| plan.execute_with_stats(&a, &b, &mut c, &mut ws));
        total_stolen += stats.tasks_stolen;
        threads_seen = threads_seen.max(stats.threads_used);
        if total_stolen > 0 && threads_seen >= 2 {
            break;
        }
    }
    assert!(
        total_stolen > 0,
        "a BFS plan on a 4-worker pool must show work stealing"
    );
    assert!(
        threads_seen >= 2,
        "stolen tasks must put gemms on more than one thread (saw {threads_seen})"
    );
}

#[test]
fn sequential_plans_report_no_parallelism() {
    let plan = Planner::new()
        .shape(64, 64, 64)
        .algorithm(&algo::strassen())
        .steps(1)
        .scheme(Scheme::Sequential)
        .plan()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let a = Matrix::random(64, 64, &mut rng);
    let b = Matrix::random(64, 64, &mut rng);
    let mut c = Matrix::zeros(64, 64);
    let mut ws = Workspace::for_plan(&plan);
    let stats = plan.execute_with_stats(&a, &b, &mut c, &mut ws);
    assert_eq!(
        stats.threads_used, 1,
        "sequential execution stays on one thread"
    );
}

/// A panicking task must neither deadlock the scope that spawned it nor
/// leak task accounting that would starve later executions.
#[test]
fn task_panic_does_not_poison_subsequent_executions() {
    let tp = pool(4);
    let plan = Planner::new()
        .shape(80, 80, 80)
        .algorithm(&algo::strassen())
        .steps(2)
        .scheme(Scheme::Bfs)
        .plan()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    for round in 0..3 {
        // Blow up a scope full of tasks inside the pool...
        let result = catch_unwind(AssertUnwindSafe(|| {
            tp.install(|| {
                rayon::scope(|s| {
                    for i in 0..16 {
                        s.spawn(move |_| {
                            if i % 2 == 0 {
                                panic!("induced task failure {i}");
                            }
                        });
                    }
                })
            })
        }));
        assert!(result.is_err(), "round {round}: panic must propagate");

        // ...and immediately afterwards the pool must still run a full
        // BFS multiply to the correct answer.
        let a = Matrix::random(80, 80, &mut rng);
        let b = Matrix::random(80, 80, &mut rng);
        let mut c = Matrix::zeros(80, 80);
        let mut want = Matrix::zeros(80, 80);
        fast_matmul::gemm::naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, want.as_mut());
        let mut ws = Workspace::for_plan(&plan);
        tp.install(|| plan.execute(&a, &b, &mut c, &mut ws));
        let d = fast_matmul::matrix::max_abs_diff(&want.as_ref(), &c.as_ref()).unwrap();
        assert!(d < 1e-9, "round {round}: wrong result after panic ({d})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Stealing determinism sweep: random shapes and schemes executed
    /// at 1, 2 and 8 workers must agree bitwise.
    #[test]
    fn parallel_schemes_are_width_deterministic(
        p in 8usize..80,
        q in 8usize..80,
        r in 8usize..80,
        seed in 0u64..1000,
        scheme in 0u8..3,
    ) {
        let scheme = match scheme {
            0 => Scheme::Bfs,
            1 => Scheme::Hybrid,
            _ => Scheme::Dfs,
        };
        let reference = run_in_pool(1, scheme, p, q, r, seed);
        for threads in [2, 8] {
            let got = run_in_pool(threads, scheme, p, q, r, seed);
            prop_assert!(
                got == reference,
                "{scheme:?} {p}x{q}x{r} seed {seed}: width {threads} diverged"
            );
        }
    }
}
