//! Release-mode scaling smoke: BFS on a 4-worker pool must beat a
//! 1-worker pool by a healthy margin on a large multiply — the §4
//! property the work-stealing runtime exists to deliver.
//!
//! The measurement is only meaningful with optimized code and ≥ 4
//! hardware threads, so the test self-skips (loudly) in debug builds
//! and on small containers. CI runs it on a release leg:
//! `cargo test --release --test runtime_scaling -- --nocapture`.

use fast_matmul::algo;
use fast_matmul::core::{Planner, Scheme, Workspace};
use fast_matmul::matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn time_best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

#[test]
fn bfs_at_four_workers_beats_one_worker() {
    if cfg!(debug_assertions) {
        eprintln!("runtime_scaling: skipped (debug build; run with --release)");
        return;
    }
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    if hw < 4 {
        eprintln!("runtime_scaling: skipped ({hw} hardware threads < 4)");
        return;
    }

    let n = 1024;
    let plan = Planner::new()
        .shape(n, n, n)
        .algorithm(&algo::strassen())
        .steps(2)
        .scheme(Scheme::Bfs)
        .plan()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let a = Matrix::random(n, n, &mut rng);
    let b = Matrix::random(n, n, &mut rng);
    let mut c = Matrix::zeros(n, n);
    let mut ws = Workspace::for_plan(&plan);

    let mut measure = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        // Warm-up sizes the workspace and faults in the pages.
        pool.install(|| plan.execute(&a, &b, &mut c, &mut ws));
        pool.install(|| time_best_of(3, || plan.execute(&a, &b, &mut c, &mut ws)))
    };

    let t1 = measure(1);
    let t4 = measure(4);
    let speedup = t1 / t4;
    eprintln!(
        "runtime_scaling: {n}^3 BFS — 1 worker {t1:.3}s, 4 workers {t4:.3}s, speedup {speedup:.2}x"
    );
    assert!(
        speedup >= 1.5,
        "BFS at 4 workers must be >= 1.5x faster than 1 worker (got {speedup:.2}x: {t1:.3}s vs {t4:.3}s)"
    );
}
