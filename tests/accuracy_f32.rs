//! Single-precision accuracy and determinism integration tests.
//!
//! §6-style measurements at the `f32` instantiation of the stack: fast
//! algorithms stay within a modest factor of *f32* classical round-off
//! (the same qualitative picture as Fig. 8, six orders of magnitude up
//! from the f64 figures), and the executor's width-determinism
//! guarantee — disjoint per-task buffers, k-loop never split — holds
//! bitwise for f32 exactly as the f64 suite
//! (`tests/runtime_parallel.rs`) establishes for f64.

use fast_matmul::algo;
use fast_matmul::core::{forward_error_in, Options, Scheme};
use fast_matmul::matrix::{DenseMatrix, Scalar};
use fast_matmul::{Planner, Workspace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

type Matrix32 = DenseMatrix<f32>;

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool")
}

/// §6 for f32: Strassen at 1–3 steps on the stability shapes of the
/// f64 suite. Exact algorithms lose a modest, depth-dependent factor
/// over classical — in f32 that means errors of order 1e-5..1e-3
/// (classical round-off is ~1e-6 at these sizes), never anything like
/// the APA blow-up.
#[test]
fn f32_strassen_error_stays_a_modest_factor_above_classical() {
    let strassen = algo::strassen();
    let classical = algo::classical(2, 2, 2);
    for steps in 1..=3usize {
        let opts = Options {
            steps,
            ..Options::default()
        };
        let e_fast = forward_error_in::<f32>(&strassen, opts, 192, 11);
        let e_classical = forward_error_in::<f32>(&classical.dec, opts, 192, 11);
        // Classical round-off is a small multiple of the element
        // type's machine epsilon (growing ~√n); Strassen amplifies but
        // must stay within a few orders of magnitude, and both must
        // sit far above the f64 scale (proving we measured f32).
        let eps = <f32 as Scalar>::EPSILON;
        assert!(
            e_classical > eps / 100.0 && e_classical < 1e3 * eps,
            "steps {steps}: classical f32 error {e_classical:.2e} not O(eps = {eps:.2e})"
        );
        assert!(
            e_fast < 1e4 * e_classical.max(1e-16),
            "steps {steps}: Strassen f32 error {e_fast:.2e} vs classical {e_classical:.2e}"
        );
        assert!(
            e_fast < 1e-2,
            "steps {steps}: Strassen f32 error {e_fast:.2e} unusably large"
        );
    }
}

/// The f32/f64 cross-check: the same algorithm on the same (seeded)
/// workload must show an error roughly `f32::EPSILON / f64::EPSILON`
/// (≈ 5e8) times larger in single precision — i.e. the error is a
/// property of the dtype, not of the generic executor.
#[test]
fn f32_error_scale_sits_orders_above_f64() {
    let strassen = algo::strassen();
    let opts = Options {
        steps: 2,
        ..Options::default()
    };
    let e32 = forward_error_in::<f32>(&strassen, opts, 128, 7);
    let e64 = forward_error_in::<f64>(&strassen, opts, 128, 7);
    assert!(
        e32 > 1e4 * e64.max(1e-18),
        "f32 error {e32:.2e} should dwarf f64 error {e64:.2e}"
    );
}

fn run_f32_in_pool(
    threads: usize,
    scheme: Scheme,
    p: usize,
    q: usize,
    r: usize,
    seed: u64,
) -> Matrix32 {
    let plan = Planner::new()
        .shape(p, q, r)
        .algorithm(&algo::strassen())
        .steps(2)
        .scheme(scheme)
        .plan::<f32>()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Matrix32::random(p, q, &mut rng);
    let b = Matrix32::random(q, r, &mut rng);
    let mut c = Matrix32::zeros(p, r);
    let mut ws = Workspace::for_plan(&plan);
    pool(threads).install(|| plan.execute(&a, &b, &mut c, &mut ws));
    c
}

/// f32 twin of the f64 width-determinism smoke: every scheme must give
/// bit-identical results at pool widths 1, 2 and 4.
#[test]
fn f32_results_are_bitwise_identical_across_pool_widths() {
    for scheme in [Scheme::Bfs, Scheme::Hybrid, Scheme::Dfs] {
        let reference = run_f32_in_pool(1, scheme, 96, 96, 96, 42);
        for threads in [2, 4] {
            let got = run_f32_in_pool(threads, scheme, 96, 96, 96, 42);
            assert_eq!(
                got, reference,
                "{scheme:?} at {threads} workers diverged from 1 worker (f32)"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// f32 stealing-determinism sweep (the acceptance-criteria twin of
    /// the f64 suite): random shapes and schemes executed at pool
    /// widths 1, 2 and 4 must agree bitwise.
    #[test]
    fn f32_parallel_schemes_are_width_deterministic(
        p in 8usize..80,
        q in 8usize..80,
        r in 8usize..80,
        seed in 0u64..1000,
        scheme in 0u8..3,
    ) {
        let scheme = match scheme {
            0 => Scheme::Bfs,
            1 => Scheme::Hybrid,
            _ => Scheme::Dfs,
        };
        let reference = run_f32_in_pool(1, scheme, p, q, r, seed);
        for threads in [2, 4] {
            let got = run_f32_in_pool(threads, scheme, p, q, r, seed);
            prop_assert!(
                got == reference,
                "{scheme:?} {p}x{q}x{r} seed {seed}: width {threads} diverged (f32)"
            );
        }
    }
}
