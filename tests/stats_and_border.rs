//! Execution-statistics and border-handling integration tests: the
//! `R^L` leaf-count law, the §4.2 memory-footprint factor, and the
//! padding-vs-peeling equivalence (§3.5).

use fast_matmul::algo;
use fast_matmul::core::{BorderHandling, FastMul, Options};
use fast_matmul::matrix::{max_abs_diff, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn leaf_count_is_rank_to_the_steps_on_divisible_problems() {
    let strassen = algo::strassen();
    for steps in 1..=3usize {
        let n = 8 * 16; // divisible by 2^steps for steps ≤ 3
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random(n, n, &mut rng);
        let b = Matrix::random(n, n, &mut rng);
        let mut c = Matrix::zeros(n, n);
        let fm = FastMul::new(
            &strassen,
            Options {
                steps,
                ..Options::default()
            },
        );
        let stats = fm.multiply_into_with_stats(a.as_ref(), b.as_ref(), c.as_mut());
        assert_eq!(stats.base_gemms, 7u64.pow(steps as u32));
        assert_eq!(stats.peel_gemms, 0, "divisible sizes never peel");
    }
}

#[test]
fn peel_gemms_appear_on_ragged_sizes() {
    let strassen = algo::strassen();
    let fm = FastMul::new(
        &strassen,
        Options {
            steps: 1,
            ..Options::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(2);
    let a = Matrix::random(65, 65, &mut rng);
    let b = Matrix::random(65, 65, &mut rng);
    let mut c = Matrix::zeros(65, 65);
    let stats = fm.multiply_into_with_stats(a.as_ref(), b.as_ref(), c.as_mut());
    assert_eq!(stats.base_gemms, 7);
    // all three dims ragged ⇒ all four quadrant fix-ups, 7 thin gemms
    assert_eq!(stats.peel_gemms, 7);
}

#[test]
fn memory_footprint_matches_section_4_2_factor() {
    // One step of ⟨M,K,N⟩ rank R on a P×Q×S problem stores R temporaries
    // of size (P/M)·(S/N) for the M_r — a factor R/(M·N) more than C —
    // plus the S_r/T_r temporaries.
    let a424 = algo::by_name("<4,2,4>").unwrap().dec;
    let (m, _, n) = a424.base();
    let rank = a424.rank() as u64;
    let (p, q, s) = (64, 64, 64);
    let mut rng = StdRng::seed_from_u64(3);
    let a = Matrix::random(p, q, &mut rng);
    let b = Matrix::random(q, s, &mut rng);
    let mut c = Matrix::zeros(p, s);
    let fm = FastMul::new(
        &a424,
        Options {
            steps: 1,
            ..Options::default()
        },
    );
    let stats = fm.multiply_into_with_stats(a.as_ref(), b.as_ref(), c.as_mut());
    let m_r_elems = rank * (p as u64 / m as u64) * (s as u64 / n as u64);
    assert!(
        stats.temp_elements >= m_r_elems,
        "must account for at least the M_r storage"
    );
    let c_elems = (p * s) as u64;
    assert!(
        stats.temp_elements >= c_elems * rank / (m as u64 * n as u64),
        "the R/(MN) memory factor of §4.2"
    );
}

#[test]
fn padding_and_peeling_agree_everywhere() {
    let strassen = algo::strassen();
    let mut rng = StdRng::seed_from_u64(4);
    for (p, q, r) in [(63, 65, 67), (100, 50, 75), (31, 97, 41)] {
        let a = Matrix::random(p, q, &mut rng);
        let b = Matrix::random(q, r, &mut rng);
        let peel = FastMul::new(
            &strassen,
            Options {
                steps: 2,
                border: BorderHandling::DynamicPeeling,
                ..Options::default()
            },
        )
        .multiply(&a, &b);
        let pad = FastMul::new(
            &strassen,
            Options {
                steps: 2,
                border: BorderHandling::Padding,
                ..Options::default()
            },
        )
        .multiply(&a, &b);
        let d = max_abs_diff(&peel.as_ref(), &pad.as_ref()).unwrap();
        assert!(d < 1e-10 * q as f64, "{p}x{q}x{r}: diff {d}");
    }
}

#[test]
fn padding_eliminates_peel_gemms() {
    let strassen = algo::strassen();
    let fm = FastMul::new(
        &strassen,
        Options {
            steps: 2,
            border: BorderHandling::Padding,
            ..Options::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(5);
    let a = Matrix::random(65, 63, &mut rng);
    let b = Matrix::random(63, 61, &mut rng);
    let mut c = Matrix::zeros(65, 61);
    let stats = fm.multiply_into_with_stats(a.as_ref(), b.as_ref(), c.as_mut());
    assert_eq!(stats.peel_gemms, 0, "padded problems never peel");
    assert_eq!(stats.base_gemms, 49);
}

#[test]
fn composed_schedule_leaf_count_is_product_of_ranks() {
    let sched = algo::schedule_54();
    let refs: Vec<&fast_matmul::tensor::Decomposition> = sched.iter().collect();
    let expect: u64 = sched.iter().map(|d| d.rank() as u64).product();
    let fm = FastMul::with_schedule(
        &refs,
        Options {
            steps: 0, // schedule length is authoritative
            ..Options::default()
        },
    );
    let n = 54;
    let mut rng = StdRng::seed_from_u64(6);
    let a = Matrix::random(n, n, &mut rng);
    let b = Matrix::random(n, n, &mut rng);
    let mut c = Matrix::zeros(n, n);
    let stats = fm.multiply_into_with_stats(a.as_ref(), b.as_ref(), c.as_mut());
    assert_eq!(stats.base_gemms, expect);
}
