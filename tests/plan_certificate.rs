//! Plan-certificate audits: `Plan::certificate()` statically re-derives
//! what a plan will do, and these tests pin it against the two ground
//! truths available at runtime — the executor's gemm-for-gemm
//! statistics and the planner's workspace sizing — across schemes,
//! border modes, ragged shapes, and composed schedules.

use fast_matmul::algo;
use fast_matmul::core::{BorderHandling, Options, Planner, Workspace};
use fast_matmul::matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use fast_matmul::core::Scheme;

/// Plan, execute, and assert the certificate predicted the run exactly.
fn check(dec: &fast_matmul::tensor::Decomposition, shape: (usize, usize, usize), opts: Options) {
    let (m, k, n) = shape;
    let plan = Planner::new()
        .shape(m, k, n)
        .algorithm(dec)
        .steps(opts.steps)
        .options(opts)
        .plan::<f64>()
        .unwrap();
    let cert = plan.certificate();
    assert_eq!(cert.shape, shape);
    assert_eq!(cert.depth, plan.depth());
    assert_eq!(
        cert.workspace_len,
        plan.workspace_len(),
        "certificate workspace disagrees with the planner for {shape:?} / {opts:?}"
    );

    let mut rng = StdRng::seed_from_u64(11);
    let a = Matrix::random(m, k, &mut rng);
    let b = Matrix::random(k, n, &mut rng);
    let mut c = Matrix::zeros(m, n);
    let mut ws = Workspace::for_plan(&plan);
    let stats = plan.execute_with_stats(&a, &b, &mut c, &mut ws);
    assert_eq!(
        stats.base_gemms, cert.base_gemms,
        "base gemms for {shape:?} / {opts:?}"
    );
    assert_eq!(
        stats.peel_gemms, cert.peel_gemms,
        "peel gemms for {shape:?} / {opts:?}"
    );
    assert_eq!(
        stats.temp_elements, cert.temp_elements,
        "temp elements for {shape:?} / {opts:?}"
    );
}

#[test]
fn certificate_predicts_execution_across_schemes_and_borders() {
    let strassen = algo::strassen();
    for scheme in [Scheme::Sequential, Scheme::Dfs, Scheme::Bfs, Scheme::Hybrid] {
        for border in [BorderHandling::DynamicPeeling, BorderHandling::Padding] {
            for shape in [(64, 64, 64), (65, 63, 61), (37, 41, 29)] {
                let opts = Options {
                    steps: 2,
                    scheme,
                    border,
                    ..Options::default()
                };
                check(&strassen, shape, opts);
            }
        }
    }
}

#[test]
fn certificate_matches_rectangular_bases() {
    for name in ["<4,2,4>", "<3,3,3>", "<4,4,2>"] {
        let alg = algo::by_name(name).unwrap();
        for shape in [(48, 48, 48), (50, 49, 47)] {
            let opts = Options {
                steps: 1,
                ..Options::default()
            };
            check(&alg.dec, shape, opts);
        }
    }
}

#[test]
fn certificate_composed_rank_and_flops_on_divisible_problems() {
    // On an evenly divisible problem the tree never collapses: the
    // base-gemm count is exactly the composed rank, there are no peel
    // gemms, and the flop count is the closed-form fast-algorithm one.
    let strassen = algo::strassen();
    let plan = Planner::new()
        .shape(64, 64, 64)
        .algorithm(&strassen)
        .steps(3)
        .plan::<f64>()
        .unwrap();
    let cert = plan.certificate();
    assert_eq!(cert.composed_rank, 343);
    assert_eq!(cert.base_gemms, 343);
    assert_eq!(cert.peel_gemms, 0);
    // 343 leaves of 8×8×8 classical gemms.
    assert_eq!(cert.gemm_flops, 343 * 2 * 8 * 8 * 8);
}

#[test]
fn certificate_covers_composed_schedules() {
    let sched = algo::schedule_54();
    let refs: Vec<&fast_matmul::tensor::Decomposition> = sched.iter().collect();
    let plan = Planner::new()
        .shape(54, 54, 54)
        .schedule(&refs)
        .steps(sched.len())
        .plan::<f64>()
        .unwrap();
    let cert = plan.certificate();
    let expect: u64 = sched.iter().map(|d| d.rank() as u64).product();
    assert_eq!(cert.composed_rank, expect);
    assert_eq!(cert.base_gemms, expect);
    assert_eq!(cert.workspace_len, plan.workspace_len());

    let mut rng = StdRng::seed_from_u64(12);
    let a = Matrix::random(54, 54, &mut rng);
    let b = Matrix::random(54, 54, &mut rng);
    let mut c = Matrix::zeros(54, 54);
    let mut ws = Workspace::for_plan(&plan);
    let stats = plan.execute_with_stats(&a, &b, &mut c, &mut ws);
    assert_eq!(stats.base_gemms, cert.base_gemms);
    assert_eq!(stats.temp_elements, cert.temp_elements);
}

#[test]
fn depth_zero_plans_certify_as_one_classical_gemm() {
    let strassen = algo::strassen();
    let plan = Planner::new()
        .shape(33, 17, 9)
        .algorithm(&strassen)
        .steps(0)
        .plan::<f64>()
        .unwrap();
    let cert = plan.certificate();
    assert_eq!(cert.base_gemms, 1);
    assert_eq!(cert.peel_gemms, 0);
    assert_eq!(cert.temp_elements, 0);
    assert_eq!(cert.gemm_flops, 2 * 33 * 17 * 9);
    assert_eq!(cert.workspace_len, plan.workspace_len());
}
