//! Numerical-accuracy integration tests (§2.2.3 / §6): exact fast
//! algorithms stay within a modest factor of classical round-off; APA
//! algorithms show the large, λ-dependent error the paper warns about;
//! ill-scaled equivalent algorithms (Prop. 2.3) lose accuracy even
//! though they are algebraically exact.

use fast_matmul::algo;
use fast_matmul::core::{forward_error, max_rel_error_vs_classical, Options};
use fast_matmul::tensor::transform::scale_columns;

#[test]
fn exact_algorithms_have_tiny_forward_error() {
    for name in ["strassen", "winograd", "<3,3,3>", "<4,2,4>", "<4,3,3>"] {
        let alg = algo::by_name(name).unwrap();
        for steps in 1..=2usize {
            let e = forward_error(
                &alg.dec,
                Options {
                    steps,
                    ..Options::default()
                },
                192,
                11,
            );
            assert!(e < 1e-11, "{name} at {steps} steps: error {e:.2e}");
        }
    }
}

#[test]
fn error_grows_with_recursion_depth_but_stays_bounded() {
    let strassen = algo::by_name("strassen").unwrap();
    let mut last = 0.0;
    for steps in 1..=4usize {
        let e = max_rel_error_vs_classical(
            &strassen.dec,
            Options {
                steps,
                ..Options::default()
            },
            256,
            2,
            5,
        );
        assert!(e < 1e-10, "steps {steps}: error {e:.2e}");
        // not strictly monotone run-to-run, but 4 steps must not be
        // orders of magnitude better than 1 step (sanity of the metric)
        last = e;
    }
    assert!(last > 0.0);
}

#[test]
fn apa_error_is_many_orders_above_exact() {
    let Some(bini) = algo::bini_apa() else {
        eprintln!("bini APA data file absent; skipping");
        return;
    };
    let strassen = algo::by_name("strassen").unwrap();
    let opts = Options::default();
    let e_apa = forward_error(&bini.dec, opts, 96, 3);
    let e_exact = forward_error(&strassen.dec, opts, 96, 3);
    assert!(
        e_apa > 1e4 * e_exact,
        "APA error {e_apa:.2e} should dwarf exact error {e_exact:.2e}"
    );
    // but the APA result is still a usable approximation, not garbage
    assert!(e_apa < 0.2, "APA error {e_apa:.2e} unexpectedly large");
}

#[test]
fn diagonal_scaling_is_stability_neutral() {
    // Prop. 2.3 column scaling multiplies S_r and divides the output
    // coefficient by the same factor: relative round-off is unchanged.
    let strassen = algo::strassen();
    let r = strassen.rank();
    let dx = vec![1e6; r];
    let dy = vec![1.0; r];
    let dz: Vec<f64> = dx.iter().map(|x| 1.0 / x).collect();
    let scaled = scale_columns(&strassen, &dx, &dy, &dz);
    scaled.verify(1e-3).expect("still algebraically exact");
    let opts = Options {
        steps: 2,
        ..Options::default()
    };
    let e_plain = forward_error(&strassen, opts, 128, 9);
    let e_scaled = forward_error(&scaled, opts, 128, 9);
    assert!(
        e_scaled < 100.0 * e_plain.max(1e-16),
        "column scaling must not change relative error materially: {e_scaled:.2e} vs {e_plain:.2e}"
    );
}

#[test]
fn ill_conditioned_sandwich_transform_loses_accuracy() {
    // Prop. 2.3 (iii) with a nearly-singular X produces an equivalent,
    // algebraically exact algorithm whose linear combinations cancel
    // catastrophically — the stability consideration §6 raises: which
    // member of an equivalence class you implement matters numerically.
    use fast_matmul::matrix::Matrix;
    use fast_matmul::tensor::transform::sandwich;
    let strassen = algo::strassen();
    let delta = 1e-7;
    let x = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0 + delta]]);
    let i2 = Matrix::identity(2);
    let twisted = sandwich(&strassen, &x, &i2, &i2).expect("nonsingular");
    let opts = Options {
        steps: 2,
        ..Options::default()
    };
    let e_plain = forward_error(&strassen, opts, 128, 9);
    let e_twisted = forward_error(&twisted, opts, 128, 9);
    assert!(
        e_twisted > 1e3 * e_plain.max(1e-16),
        "ill-conditioned equivalent should visibly hurt accuracy: {e_twisted:.2e} vs {e_plain:.2e}"
    );
}

#[test]
fn classical_decomposition_error_matches_gemm_roundoff() {
    let c = algo::classical(2, 2, 2);
    let e = forward_error(
        &c.dec,
        Options {
            steps: 2,
            ..Options::default()
        },
        128,
        13,
    );
    assert!(e < 1e-13, "classical recursion error {e:.2e}");
}
