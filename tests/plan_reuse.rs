//! Plan/execute integration tests: correctness of the Planner →
//! Plan → Workspace pipeline across shapes and schemes, the zero-alloc
//! reuse property the API exists for, auto-tuned depth selection
//! (§3.4), and the batched front door.

use fast_matmul::algo;
use fast_matmul::core::{AdditionMethod, GemmProfile, Plan, Planner, Scheme, Workspace};
use fast_matmul::matrix::{max_abs_diff, Matrix};
use fast_matmul::tensor::compose::classical;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn reference(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    fast_matmul::gemm::naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
    c
}

fn flat_profile() -> GemmProfile {
    GemmProfile::from_samples(vec![(64, 4.0), (4096, 4.0)])
}

/// Three consecutive executes on the *same* workspace, fresh random
/// operands each time — stale workspace contents from run `i` must not
/// leak into run `i + 1`.
fn check_three_executes(plan: &Plan, seed: u64, tol: f64) {
    let (p, q, r) = plan.shape();
    let mut ws = Workspace::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for trial in 0..3 {
        let a = Matrix::random(p, q, &mut rng);
        let b = Matrix::random(q, r, &mut rng);
        let mut c = Matrix::filled(p, r, f64::NAN); // output must be fully overwritten
        plan.execute(&a, &b, &mut c, &mut ws);
        let want = reference(&a, &b);
        let d = max_abs_diff(&want.as_ref(), &c.as_ref()).unwrap();
        assert!(
            d < tol,
            "trial {trial} on {p}x{q}x{r} {:?}: diff {d}",
            plan.options()
        );
    }
}

#[test]
fn reused_workspace_matches_reference_across_shapes_and_schemes() {
    let strassen = algo::strassen();
    for &(p, q, r) in &[(64, 64, 64), (97, 53, 71), (80, 96, 72)] {
        for scheme in [Scheme::Sequential, Scheme::Dfs, Scheme::Bfs, Scheme::Hybrid] {
            for additions in [
                AdditionMethod::Pairwise,
                AdditionMethod::WriteOnce,
                AdditionMethod::Streaming,
            ] {
                let plan = Planner::new()
                    .shape(p, q, r)
                    .algorithm(&strassen)
                    .steps(2)
                    .scheme(scheme)
                    .additions(additions)
                    .plan()
                    .unwrap();
                check_three_executes(&plan, 7, 1e-9 * q as f64);
            }
        }
    }
}

#[test]
fn repeated_executes_report_identical_workspace_and_reuse() {
    let strassen = algo::strassen();
    // The zero-alloc property must hold for the sequential scheme AND
    // the task-spawning BFS/HYBRID schemes, whose workspaces are
    // partitioned across rayon tasks.
    for scheme in [Scheme::Sequential, Scheme::Bfs, Scheme::Hybrid] {
        let plan = Planner::new()
            .shape(96, 96, 96)
            .algorithm(&strassen)
            .steps(2)
            .scheme(scheme)
            .plan()
            .unwrap();
        let mut ws = Workspace::for_plan(&plan);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_bytes = None;
        for trial in 0..3 {
            let a = Matrix::random(96, 96, &mut rng);
            let b = Matrix::random(96, 96, &mut rng);
            let mut c = Matrix::zeros(96, 96);
            let len_before = ws.len();
            let stats = plan.execute_with_stats(&a, &b, &mut c, &mut ws);
            assert_eq!(
                stats.workspace_bytes,
                plan.workspace_bytes() as u64,
                "{scheme:?}: reported workspace must be the planned size"
            );
            if let Some(prev) = seen_bytes {
                assert_eq!(stats.workspace_bytes, prev, "{scheme:?}: footprint drifted");
            }
            seen_bytes = Some(stats.workspace_bytes);
            assert!(
                stats.workspace_reused,
                "{scheme:?} trial {trial}: pre-sized workspace must be reused, not grown"
            );
            assert_eq!(ws.len(), len_before, "{scheme:?}: no new temp buffers");
        }
    }
}

#[test]
fn planner_auto_depth_follows_the_cutoff_rule() {
    // Acceptance criteria: with a synthetic flat profile the planner
    // must recurse Strassen (positive per-step speedup) and keep the
    // classical ⟨2,2,2⟩ algorithm (zero speedup) at depth 0.
    let strassen_plan = Planner::new()
        .shape(1024, 1024, 1024)
        .algorithm(&algo::strassen())
        .profile(flat_profile())
        .plan::<f64>()
        .unwrap();
    assert!(strassen_plan.depth() > 0);

    let classical_plan: fast_matmul::Plan = Planner::new()
        .shape(1024, 1024, 1024)
        .algorithm(&classical(2, 2, 2))
        .profile(flat_profile())
        .plan()
        .unwrap();
    assert_eq!(classical_plan.depth(), 0);
    assert_eq!(classical_plan.workspace_len(), 0);
}

#[test]
fn auto_algorithm_over_the_catalog_picks_a_fast_candidate() {
    let cands: Vec<_> = algo::candidates_for_shape(512, 512, 512)
        .into_iter()
        .map(|a| a.dec)
        .collect();
    let plan = Planner::new()
        .shape(512, 512, 512)
        .auto_algorithm(&cands)
        .profile(flat_profile())
        .plan()
        .unwrap();
    assert!(
        plan.depth() > 0,
        "catalog has fast algorithms; must recurse"
    );
    check_three_executes(&plan, 21, 1e-8 * 512.0);
}

#[test]
fn saved_profile_replay_plans_like_the_original() {
    let profile = flat_profile();
    let replayed = GemmProfile::from_json(&profile.to_json()).unwrap();
    let strassen = algo::strassen();
    let direct = Planner::new()
        .shape(256, 256, 256)
        .algorithm(&strassen)
        .profile(profile)
        .plan::<f64>()
        .unwrap();
    let saved = Planner::new()
        .shape(256, 256, 256)
        .algorithm(&strassen)
        .profile(replayed)
        .plan::<f64>()
        .unwrap();
    assert_eq!(direct.depth(), saved.depth());
    assert_eq!(direct.workspace_len(), saved.workspace_len());
}

#[test]
fn execute_batch_runs_independent_problems() {
    let plan = Planner::new()
        .shape(48, 36, 52)
        .algorithm(&algo::strassen())
        .steps(2)
        .plan()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let problems: Vec<(Matrix, Matrix)> = (0..6)
        .map(|_| {
            (
                Matrix::random(48, 36, &mut rng),
                Matrix::random(36, 52, &mut rng),
            )
        })
        .collect();
    let batch: Vec<(&Matrix, &Matrix)> = problems.iter().map(|(a, b)| (a, b)).collect();
    let outs = plan.execute_batch(&batch);
    for (i, ((a, b), c)) in problems.iter().zip(&outs).enumerate() {
        let want = reference(a, b);
        let d = max_abs_diff(&want.as_ref(), &c.as_ref()).unwrap();
        assert!(d < 1e-9, "batch entry {i}: diff {d}");
    }

    // Repeated batches into retained outputs/workspaces allocate
    // nothing new: workspace lengths must not change.
    let mut outs = outs;
    let mut workspaces: Vec<Workspace> = batch.iter().map(|_| Workspace::for_plan(&plan)).collect();
    plan.execute_batch_into(&batch, &mut outs, &mut workspaces);
    let lens: Vec<usize> = workspaces.iter().map(|w| w.len()).collect();
    plan.execute_batch_into(&batch, &mut outs, &mut workspaces);
    assert_eq!(lens, workspaces.iter().map(|w| w.len()).collect::<Vec<_>>());
    for ((a, b), c) in problems.iter().zip(&outs) {
        let want = reference(a, b);
        assert!(max_abs_diff(&want.as_ref(), &c.as_ref()).unwrap() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random shapes/schemes/strategies: a plan plus a reused workspace
    /// must match the naive reference for 3 consecutive executes on the
    /// same workspace (catches stale-buffer bugs).
    #[test]
    fn plan_with_reused_workspace_equals_classical(
        p in 1usize..100,
        q in 1usize..100,
        r in 1usize..100,
        seed in 0u64..1000,
        steps in 0usize..3,
        scheme in 0u8..4,
        additions in 0u8..3,
    ) {
        let scheme = match scheme {
            0 => Scheme::Sequential,
            1 => Scheme::Dfs,
            2 => Scheme::Bfs,
            _ => Scheme::Hybrid,
        };
        let additions = match additions {
            0 => AdditionMethod::Pairwise,
            1 => AdditionMethod::WriteOnce,
            _ => AdditionMethod::Streaming,
        };
        let plan = Planner::new()
            .shape(p, q, r)
            .algorithm(&algo::strassen())
            .steps(steps)
            .scheme(scheme)
            .additions(additions)
            .plan()
            .unwrap();
        let mut ws = Workspace::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..3 {
            let a = Matrix::random(p, q, &mut rng);
            let b = Matrix::random(q, r, &mut rng);
            let mut c = Matrix::zeros(p, r);
            plan.execute(&a, &b, &mut c, &mut ws);
            let want = reference(&a, &b);
            let d = max_abs_diff(&want.as_ref(), &c.as_ref()).unwrap();
            prop_assert!(d < 1e-10 * (q as f64 + 1.0), "diff {d}");
        }
    }
}
