//! Property-based tests over the whole stack: random shapes, seeds,
//! strategies and algorithms must always reproduce the classical
//! product; transformation laws must preserve exactness.

use fast_matmul::algo;
use fast_matmul::core::{AdditionMethod, FastMul, Options, Scheme};
use fast_matmul::matrix::{max_abs_diff, Matrix};
use fast_matmul::tensor::compose::{classical, direct_sum_n, kron_compose};
use fast_matmul::tensor::transform::{permute_to, scale_columns};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn reference(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    fast_matmul::gemm::naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fast_equals_classical_on_random_shapes(
        p in 1usize..120,
        q in 1usize..120,
        r in 1usize..120,
        seed in 0u64..1000,
        steps in 0usize..3,
        additions in 0u8..3,
    ) {
        let additions = match additions {
            0 => AdditionMethod::Pairwise,
            1 => AdditionMethod::WriteOnce,
            _ => AdditionMethod::Streaming,
        };
        let strassen = algo::strassen();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(p, q, &mut rng);
        let b = Matrix::random(q, r, &mut rng);
        let want = reference(&a, &b);
        let got = FastMul::new(&strassen, Options { steps, additions, ..Options::default() })
            .multiply(&a, &b);
        let d = max_abs_diff(&want.as_ref(), &got.as_ref()).unwrap();
        prop_assert!(d < 1e-10 * (q as f64 + 1.0), "diff {d}");
    }

    #[test]
    fn parallel_schemes_bitwise_match_each_other_logically(
        seed in 0u64..500,
        scheme in 0u8..3,
    ) {
        let scheme = match scheme {
            0 => Scheme::Dfs,
            1 => Scheme::Bfs,
            _ => Scheme::Hybrid,
        };
        let strassen = algo::strassen();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(70, 66, &mut rng);
        let b = Matrix::random(66, 74, &mut rng);
        let want = reference(&a, &b);
        let got = FastMul::new(&strassen, Options { steps: 2, scheme, ..Options::default() })
            .multiply(&a, &b);
        let d = max_abs_diff(&want.as_ref(), &got.as_ref()).unwrap();
        prop_assert!(d < 1e-10 * 67.0);
    }

    #[test]
    fn composition_rank_and_dims_laws(
        m1 in 1usize..3, k1 in 1usize..3, n1 in 1usize..3,
        m2 in 1usize..3, k2 in 1usize..3, n2 in 1usize..3,
    ) {
        let a = classical(m1, k1, n1);
        let b = classical(m2, k2, n2);
        let c = kron_compose(&a, &b);
        prop_assert_eq!(c.base(), (m1 * m2, k1 * k2, n1 * n2));
        prop_assert_eq!(c.rank(), a.rank() * b.rank());
        prop_assert!(c.verify(1e-12).is_ok());
    }

    #[test]
    fn direct_sum_law(
        m in 1usize..4, k in 1usize..4, n1 in 1usize..4, n2 in 1usize..4,
    ) {
        let a = classical(m, k, n1);
        let b = classical(m, k, n2);
        let c = direct_sum_n(&a, &b);
        prop_assert_eq!(c.base(), (m, k, n1 + n2));
        prop_assert_eq!(c.rank(), a.rank() + b.rank());
        prop_assert!(c.verify(1e-12).is_ok());
    }

    #[test]
    fn permutations_preserve_exactness_and_rank(
        m in 1usize..4, k in 1usize..4, n in 1usize..4,
        which in 0usize..6,
    ) {
        let base = classical(m, k, n);
        let mut dims = [m, k, n];
        dims.sort_unstable();
        let targets = [
            (dims[0], dims[1], dims[2]),
            (dims[0], dims[2], dims[1]),
            (dims[1], dims[0], dims[2]),
            (dims[1], dims[2], dims[0]),
            (dims[2], dims[0], dims[1]),
            (dims[2], dims[1], dims[0]),
        ];
        let t = targets[which];
        let p = permute_to(&base, t).expect("same multiset");
        prop_assert_eq!(p.base(), t);
        prop_assert_eq!(p.rank(), base.rank());
        prop_assert!(p.verify(1e-12).is_ok());
    }

    #[test]
    fn column_scaling_preserves_algorithm(scale in 0.25f64..4.0) {
        let s = algo::strassen();
        let r = s.rank();
        let dx = vec![scale; r];
        let dy = vec![2.0; r];
        let dz: Vec<f64> = dx.iter().zip(&dy).map(|(x, y)| 1.0 / (x * y)).collect();
        let t = scale_columns(&s, &dx, &dy, &dz);
        prop_assert!(t.verify(1e-8).is_ok());
    }

    #[test]
    fn peeling_covers_every_size_near_multiples(
        base_n in 1usize..5,
        delta in 0usize..10,
    ) {
        // sizes straddling multiples of 2^steps
        let n = base_n * 16 + delta;
        let strassen = algo::strassen();
        let mut rng = StdRng::seed_from_u64(n as u64);
        let a = Matrix::random(n, n, &mut rng);
        let b = Matrix::random(n, n, &mut rng);
        let want = reference(&a, &b);
        let got = FastMul::new(&strassen, Options { steps: 3, ..Options::default() })
            .multiply(&a, &b);
        let d = max_abs_diff(&want.as_ref(), &got.as_ref()).unwrap();
        prop_assert!(d < 1e-10 * (n as f64 + 1.0));
    }
}
