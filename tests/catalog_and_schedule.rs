//! Integration tests of the catalog, the construction optimizer and
//! the composed ⟨54,54,54⟩ schedule.

use fast_matmul::algo;
use fast_matmul::core::{FastMul, Options};
use fast_matmul::matrix::{max_abs_diff, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn table2_ranks_never_exceed_derived_upper_bounds() {
    // The catalog entry must be at least as good as pure classical and
    // no worse than the documented fallback constructions.
    let bounds = [
        ((2usize, 2usize, 3usize), 11usize),
        ((2, 2, 4), 14),
        ((2, 2, 5), 18),
        ((2, 3, 3), 15), // flip-graph searched (paper Table 2 rank)
        ((2, 3, 4), 21), // ⟨2,3,1⟩ ⊕ ⟨2,3,3⟩ on the searched 15
        ((2, 4, 4), 28),
        ((3, 3, 3), 24), // ⟨1,3,3⟩ ⊕ ⟨2,3,3⟩; 23 with a searched file
        ((3, 3, 4), 30),
        ((3, 4, 4), 42),
        ((3, 3, 6), 45), // ⟨3,3,2⟩ ⊕ ⟨3,3,4⟩; 40 with a searched file
    ];
    for ((m, k, n), bound) in bounds {
        let alg = algo::by_base(m, k, n);
        assert!(
            alg.dec.rank() <= bound,
            "⟨{m},{k},{n}⟩ rank {} exceeds bound {bound}",
            alg.dec.rank()
        );
        alg.dec.verify(algo::EXACT_TOL).unwrap();
    }
}

#[test]
fn schedule_54_multiplies_correctly_on_divisible_size() {
    let sched = algo::schedule_54();
    let refs: Vec<&fast_matmul::tensor::Decomposition> = sched.iter().collect();
    let fm = FastMul::with_schedule(
        &refs,
        Options {
            steps: 0, // schedule length is authoritative
            ..Options::default()
        },
    );
    let n = 108; // 2 × 54
    let mut rng = StdRng::seed_from_u64(1);
    let a = Matrix::random(n, n, &mut rng);
    let b = Matrix::random(n, n, &mut rng);
    let mut want = Matrix::zeros(n, n);
    fast_matmul::gemm::naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, want.as_mut());
    let got = fm.multiply(&a, &b);
    let d = max_abs_diff(&want.as_ref(), &got.as_ref()).unwrap();
    assert!(d < 1e-9, "diff {d}");
}

#[test]
fn schedule_54_handles_non_divisible_sizes_via_peeling() {
    let sched = algo::schedule_54();
    let refs: Vec<&fast_matmul::tensor::Decomposition> = sched.iter().collect();
    let fm = FastMul::with_schedule(
        &refs,
        Options {
            steps: 0, // schedule length is authoritative
            ..Options::default()
        },
    );
    let (p, q, r) = (100, 75, 131);
    let mut rng = StdRng::seed_from_u64(2);
    let a = Matrix::random(p, q, &mut rng);
    let b = Matrix::random(q, r, &mut rng);
    let mut want = Matrix::zeros(p, r);
    fast_matmul::gemm::naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, want.as_mut());
    let got = fm.multiply(&a, &b);
    let d = max_abs_diff(&want.as_ref(), &got.as_ref()).unwrap();
    assert!(d < 1e-9, "diff {d}");
}

#[test]
fn composed_exponent_tracks_336_rank() {
    let sched = algo::schedule_54();
    let rank: usize = sched.iter().map(|d| d.rank()).product();
    let omega = 3.0 * (rank as f64).ln() / (54.0f64.powi(3)).ln();
    // With the paper's rank 40: ω = 2.775. The flip-graph-searched
    // ⟨2,3,3⟩:15 puts the derived ⟨3,3,6⟩ at rank 45 (ω ≈ 2.863),
    // strictly below the pre-search rank-51 construction's 2.957.
    assert!(omega < 2.957, "composed exponent regressed: {omega}");
    let r336 = sched[0].rank();
    assert_eq!(rank, r336.pow(3));
    // ω = 3·log₅₄³(R³) = 3·log₅₄(R) — the per-level and aggregate views
    // of the exponent must agree.
    let direct = 3.0 * (r336 as f64).ln() / 54.0f64.ln();
    assert!((omega - direct).abs() < 1e-12);
}

#[test]
fn apa_entries_if_present_have_small_residual_and_run() {
    for apa in [algo::bini_apa(), algo::schonhage_apa()]
        .into_iter()
        .flatten()
    {
        let residual = match apa.provenance {
            algo::Provenance::Apa(r) => r,
            ref other => panic!("APA entry has provenance {other:?}"),
        };
        // Below 1/2, the 0/1 matmul tensor is the unique nearest
        // integer tensor — the acceptance bound check_apa_fit enforces.
        assert!(
            residual < fast_matmul::verify::UNIQUE_ROUNDING_BOUND,
            "{}: residual {residual} too large",
            apa.name
        );
        // APA algorithms multiply with bounded (not machine-precision)
        // error: check the error is comparable to the residual scale.
        let (m, k, n) = apa.dec.base();
        let (p, q, r) = (m * 16, k * 16, n * 16);
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::random(p, q, &mut rng);
        let b = Matrix::random(q, r, &mut rng);
        let mut want = Matrix::zeros(p, r);
        fast_matmul::gemm::naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, want.as_mut());
        let got = FastMul::new(&apa.dec, Options::default()).multiply(&a, &b);
        let err = fast_matmul::matrix::relative_error(&got.as_ref(), &want.as_ref());
        assert!(
            err < residual.max(1e-12) * 1e3 + 1e-9,
            "{}: error {err} vs residual {residual}",
            apa.name
        );
    }
}

#[test]
fn derive_best_monotone_in_seeds() {
    let no_seeds = algo::derive_best(3, 3, 3, &[]);
    let with = algo::derive_best(3, 3, 3, &[algo::strassen()]);
    assert!(with.0.rank() <= no_seeds.0.rank());
}

#[test]
fn facade_reexports_are_consistent() {
    // The root crate re-exports each sub-crate under a stable name.
    let s1 = fast_matmul::algo::strassen();
    let s2 = algo::strassen();
    assert_eq!(s1.rank(), s2.rank());
    let _ = fast_matmul::core::Options::default();
    let _ = fast_matmul::tensor::matmul_tensor(2, 2, 2);
    let _ = fast_matmul::matrix::Matrix::zeros(1, 1);
}
