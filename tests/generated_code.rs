//! Compile and validate the committed output of the code generator
//! (§3.1). `tests/generated/strassen_gen.rs` is produced by
//! `fmm_core::generate_rust(&strassen(), "strassen_generated", false)`;
//! the drift test regenerates it and compares strings, so any change to
//! the generator or the catalog entry is caught here.

use fast_matmul::matrix::{max_abs_diff, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

mod generated {
    include!("generated/strassen_gen.rs");
}

#[test]
fn generated_strassen_matches_reference() {
    let mut rng = StdRng::seed_from_u64(1);
    for (p, q, r) in [(64, 64, 64), (97, 53, 71), (128, 96, 80)] {
        let a = Matrix::random(p, q, &mut rng);
        let b = Matrix::random(q, r, &mut rng);
        let mut want = Matrix::zeros(p, r);
        fast_matmul::gemm::naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, want.as_mut());
        for steps in 0..=2usize {
            let mut got = Matrix::zeros(p, r);
            generated::strassen_generated(a.as_ref(), b.as_ref(), got.as_mut(), steps);
            let d = max_abs_diff(&want.as_ref(), &got.as_ref()).unwrap();
            assert!(d < 1e-10 * q as f64, "steps {steps}: diff {d}");
        }
    }
}

#[test]
fn generated_source_is_current() {
    let committed = include_str!("generated/strassen_gen.rs");
    let fresh = fast_matmul::core::generate_rust(
        &fast_matmul::algo::strassen(),
        "strassen_generated",
        false,
    );
    assert_eq!(
        committed, fresh,
        "generator output drifted; regenerate tests/generated/strassen_gen.rs"
    );
}

#[test]
fn generated_strassen_agrees_with_executor() {
    let strassen = fast_matmul::algo::strassen();
    let fm = fast_matmul::core::FastMul::new(
        &strassen,
        fast_matmul::core::Options {
            steps: 2,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(2);
    let a = Matrix::random(90, 110, &mut rng);
    let b = Matrix::random(110, 70, &mut rng);
    let via_executor = fm.multiply(&a, &b);
    let mut via_generated = Matrix::zeros(90, 70);
    generated::strassen_generated(a.as_ref(), b.as_ref(), via_generated.as_mut(), 2);
    let d = max_abs_diff(&via_executor.as_ref(), &via_generated.as_ref()).unwrap();
    assert!(d < 1e-10 * 110.0, "diff {d}");
}
