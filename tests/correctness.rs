//! Cross-crate integration: every catalog algorithm, every addition
//! strategy, every parallel scheme — all must agree with the naive
//! reference multiplication, including on dimensions that force
//! dynamic peeling at every level.

use fast_matmul::algo;
use fast_matmul::core::{AdditionMethod, FastMul, Options, Scheme};
use fast_matmul::matrix::{max_abs_diff, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn reference(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    fast_matmul::gemm::naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
    c
}

fn check(
    dec: &fast_matmul::tensor::Decomposition,
    p: usize,
    q: usize,
    r: usize,
    opts: Options,
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Matrix::random(p, q, &mut rng);
    let b = Matrix::random(q, r, &mut rng);
    let want = reference(&a, &b);
    let got = FastMul::new(dec, opts).multiply(&a, &b);
    let d = max_abs_diff(&want.as_ref(), &got.as_ref()).unwrap();
    assert!(
        d < 1e-9 * q as f64,
        "mismatch {d:.3e} at {p}x{q}x{r} with {opts:?}"
    );
}

#[test]
fn every_catalog_algorithm_multiplies_correctly() {
    for alg in algo::catalog() {
        let (m, k, n) = alg.dec.base();
        // A size divisible twice plus a ragged size.
        let p = m * m * 4 + 3;
        let q = k * k * 4 + 1;
        let r = n * n * 4 + 2;
        for steps in [1usize, 2] {
            check(
                &alg.dec,
                p,
                q,
                r,
                Options {
                    steps,
                    ..Options::default()
                },
                1000 + steps as u64,
            );
        }
    }
}

#[test]
fn strategy_matrix_full_cross_product() {
    let strassen = algo::by_name("strassen").unwrap().dec;
    for additions in [
        AdditionMethod::Pairwise,
        AdditionMethod::WriteOnce,
        AdditionMethod::Streaming,
    ] {
        for cse in [false, true] {
            for scheme in [Scheme::Sequential, Scheme::Dfs, Scheme::Bfs, Scheme::Hybrid] {
                check(
                    &strassen,
                    101,
                    67,
                    89,
                    Options {
                        steps: 2,
                        additions,
                        cse,
                        scheme,
                        ..Options::default()
                    },
                    7,
                );
            }
        }
    }
}

#[test]
fn cse_on_catalog_algorithms_changes_nothing() {
    // CSE must be a pure evaluation-plan optimization.
    for name in ["<3,3,3>", "<4,2,4>", "<4,3,3>", "<2,3,3>"] {
        let alg = algo::by_name(name).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let (m, k, n) = alg.dec.base();
        let (p, q, r) = (m * 20, k * 20, n * 20);
        let a = Matrix::random(p, q, &mut rng);
        let b = Matrix::random(q, r, &mut rng);
        let plain = FastMul::new(
            &alg.dec,
            Options {
                steps: 1,
                cse: false,
                ..Options::default()
            },
        )
        .multiply(&a, &b);
        let with_cse = FastMul::new(
            &alg.dec,
            Options {
                steps: 1,
                cse: true,
                ..Options::default()
            },
        )
        .multiply(&a, &b);
        let d = max_abs_diff(&plain.as_ref(), &with_cse.as_ref()).unwrap();
        assert!(d < 1e-10, "{name}: CSE changed the result by {d:.2e}");
    }
}

#[test]
fn deep_recursion_on_divisible_sizes() {
    let strassen = algo::by_name("strassen").unwrap().dec;
    check(
        &strassen,
        256,
        256,
        256,
        Options {
            steps: 5,
            ..Options::default()
        },
        13,
    );
}

#[test]
fn extreme_aspect_ratios() {
    let a424 = algo::by_name("<4,2,4>").unwrap().dec;
    check(&a424, 400, 16, 400, Options::default(), 17); // outer product
    let a433 = algo::by_name("<4,3,3>").unwrap().dec;
    check(&a433, 500, 27, 27, Options::default(), 19); // tall and skinny
    let strassen = algo::by_name("strassen").unwrap().dec;
    check(&strassen, 8, 512, 8, Options::default(), 23); // inner product shape
}

#[test]
fn one_dimensional_degenerate_cases() {
    let strassen = algo::by_name("strassen").unwrap().dec;
    for (p, q, r) in [(1, 64, 64), (64, 1, 64), (64, 64, 1), (1, 1, 1)] {
        check(
            &strassen,
            p,
            q,
            r,
            Options {
                steps: 2,
                ..Options::default()
            },
            29,
        );
    }
}
