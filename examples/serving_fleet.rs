//! Serving-fleet quickstart: a router over two shard *processes*, each
//! hosting its own `FmmEngine` behind a Unix socket — the multi-process
//! tier that survives a crashed or wedged shard.
//!
//! The example re-execs itself as the shard worker
//! (`ShardLauncher::SelfExec`), so the one binary plays every role:
//! router, shards, and clients.
//!
//! Run with: `cargo run --release --example serving_fleet`

use fast_matmul::matrix::Matrix;
use fast_matmul::serve::{
    maybe_run_shard_worker, start_router, RouterConfig, ServeClient, ShardLauncher, ShardSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // MUST come first: when the router re-execs this binary as a shard
    // worker, this call takes over and never returns.
    maybe_run_shard_worker();

    // Two shard processes, each with a 1-wide engine and an admission
    // limit of 8 in-flight requests (over it, the shard answers a
    // typed Busy and the router retries a sibling).
    let dir = std::env::temp_dir().join(format!("fmm-fleet-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    let specs = (0..2)
        .map(|i| ShardSpec {
            socket: dir.join(format!("shard-{i}.sock")),
            threads: 1,
            max_inflight: 8,
        })
        .collect();
    let cfg = RouterConfig::new(dir.join("router.sock"), ShardLauncher::SelfExec, specs);
    let router = start_router(cfg).expect("spawn router + shards");
    println!("fleet up: router at {}", router.socket().display());

    // A mixed-shape stream from two client threads. Placement hashes
    // (m, k, n, dtype) onto a shard, so each shape always lands on the
    // same shard and that shard's plan cache stays hot.
    let shapes = [(128, 128, 128), (96, 192, 96), (192, 96, 48)];
    let mut rng = StdRng::seed_from_u64(7);
    let problems: Vec<(Matrix, Matrix)> = shapes
        .iter()
        .map(|&(m, k, n)| {
            (
                Matrix::random(m, k, &mut rng),
                Matrix::random(k, n, &mut rng),
            )
        })
        .collect();

    let t0 = Instant::now();
    let served: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|client| {
                let problems = &problems;
                let router = &router;
                scope.spawn(move || {
                    let mut conn =
                        ServeClient::connect(router.socket()).expect("connect to router");
                    for round in 0..6 {
                        let (a, b) = &problems[(client + round) % problems.len()];
                        let c = conn.multiply(a, b).expect("served multiply");
                        std::hint::black_box(&c);
                    }
                    6
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    println!(
        "served {served} multiplies from 2 clients through the fleet in {:.3}s",
        t0.elapsed().as_secs_f64()
    );

    // One connection can also pipeline a whole batch of requests.
    let mut conn = ServeClient::connect(router.socket()).expect("connect");
    let results = conn.multiply_batch(&problems).expect("batch");
    println!(
        "pipelined batch: {} results on one connection",
        results.len()
    );

    // Fleet observability: each shard's stats RPC (engine counters,
    // queue depth) aggregated with the router's own counters into one
    // JSON snapshot. shard_multiplies() == completions even across
    // shard crashes and respawns.
    let stats = router.fleet_stats();
    println!(
        "fleet accounting: {} completions == {} shard multiplies across {} shards",
        stats.router.completions,
        stats.shard_multiplies(),
        stats.slots.len()
    );
    println!("{}", stats.to_json());

    router.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
