//! Code generation (§3.1): emit a specialized Rust implementation of
//! any catalog algorithm. The paper's framework generates C++ per
//! algorithm; this is the Rust equivalent. The printed module compiles
//! against `fmm-matrix` + `fmm-gemm` alone (see
//! `tests/generated/strassen_gen.rs` for a committed, tested instance).
//!
//! Run with: `cargo run --release --example codegen -- "<2,2,3>"`

use fast_matmul::algo;
use fast_matmul::core::generate_rust;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "strassen".into());
    let alg = algo::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown algorithm {name:?}; try \"strassen\" or \"<2,2,3>\"");
        std::process::exit(2);
    });
    let fn_name = format!("fast_{}x{}x{}", alg.dec.m, alg.dec.k, alg.dec.n);
    eprintln!(
        "// {} — rank {}, {} additions, provenance {:?}\n",
        alg.name,
        alg.dec.rank(),
        alg.dec.addition_count(1e-12),
        alg.provenance,
    );
    println!("{}", generate_rust(&alg.dec, &fn_name, false));
}
