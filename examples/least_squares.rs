//! Domain application: linear least squares via the normal equations.
//!
//! The paper's introduction motivates fast algorithms with rectangular
//! products, which "occur more frequently in practice" than square
//! ones. Fitting a linear model `min ‖X·β − y‖` with a tall, skinny
//! design matrix `X (n × d)` needs exactly the paper's two rectangular
//! shapes:
//!
//! * the Gram matrix `G = Xᵀ·X` is a `d × n × d` product — the
//!   "outer-product" shape where ⟨4,2,4⟩-style algorithms shine;
//! * the prediction `X·β̂` is tall-and-skinny.
//!
//! This example builds a synthetic regression problem, forms the Gram
//! matrix with a shape-matched fast algorithm, solves the normal
//! equations, and checks the recovered coefficients.
//!
//! Run with: `cargo run --release --example least_squares`

use fast_matmul::algo;
use fast_matmul::core::{effective_gflops, FastMul, Options};
use fast_matmul::matrix::Matrix;
use fast_matmul::tensor::linalg::cholesky_solve;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let (n, d) = (1536, 384); // tall design matrix
    let mut rng = StdRng::seed_from_u64(7);
    let x = Matrix::random(n, d, &mut rng);
    let beta_true = Matrix::from_fn(d, 1, |i, _| ((i % 7) as f64 - 3.0) / 3.0);
    // y = X·β + small noise
    let mut y = fast_matmul::gemm::matmul(&x, &beta_true);
    for v in y.as_mut_slice() {
        *v += 1e-8 * rng.gen_range(-1.0..1.0);
    }

    // Gram matrix G = Xᵀ·X: a d × n × d outer-product-shaped multiply.
    let xt = x.transpose();
    let gram_alg = algo::by_name("<4,2,4>").expect("catalog");
    let fm = FastMul::new(
        &gram_alg.dec,
        Options {
            steps: 2,
            ..Options::default()
        },
    );

    let t0 = Instant::now();
    let g_fast = fm.multiply(&xt, &x);
    let fast_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let g_ref = fast_matmul::gemm::matmul(&xt, &x);
    let ref_secs = t0.elapsed().as_secs_f64();

    let gram_err = fast_matmul::matrix::relative_error(&g_fast.as_ref(), &g_ref.as_ref());
    println!("Gram matrix XᵀX ({d} × {n} × {d}):");
    println!(
        "  classical: {ref_secs:.3}s = {:.2} effective GFLOPS",
        effective_gflops(d, n, d, ref_secs)
    );
    println!(
        "  <4,2,4>  : {fast_secs:.3}s = {:.2} effective GFLOPS  (relative error {gram_err:.1e})",
        effective_gflops(d, n, d, fast_secs)
    );
    assert!(gram_err < 1e-10);

    // Solve G·β = Xᵀy and check recovery.
    let xty = fast_matmul::gemm::matmul(&xt, &y);
    let beta_hat = cholesky_solve(&g_fast, &xty).expect("SPD Gram matrix");
    let coeff_err = fast_matmul::matrix::relative_error(&beta_hat.as_ref(), &beta_true.as_ref());
    println!("normal equations solved: coefficient error {coeff_err:.2e}");
    assert!(
        coeff_err < 1e-6,
        "least-squares recovery failed: {coeff_err:.2e}"
    );
    println!("recovered {d}-dimensional model through a fast-matmul Gram matrix ✓");
}
