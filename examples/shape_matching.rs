//! "Match the shape": the paper's central observation for rectangular
//! problems (§5.1, Result 4). On an outer-product shaped problem
//! `N × K × N` with small fixed `K`, algorithms whose base case has the
//! same shape — ⟨4,2,4⟩, ⟨3,2,3⟩ — beat Strassen, which in turn cannot
//! take as many useful recursive steps because the inner dimension
//! shrinks too fast.
//!
//! Run with: `cargo run --release --example shape_matching`

use fast_matmul::algo;
use fast_matmul::core::{effective_gflops, FastMul, Options};
use fast_matmul::gemm;
use fast_matmul::matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn time_it(f: impl FnOnce() -> Matrix) -> (Matrix, f64) {
    let t0 = Instant::now();
    let c = f();
    (c, t0.elapsed().as_secs_f64())
}

fn main() {
    let (n, k) = (1200, 512); // outer-product shape: N × K × N
    let mut rng = StdRng::seed_from_u64(1);
    let a = Matrix::random(n, k, &mut rng);
    let b = Matrix::random(k, n, &mut rng);

    println!("outer-product problem: {n} x {k} x {n}\n");
    let (c_ref, secs) = time_it(|| gemm::matmul(&a, &b));
    println!(
        "{:<22} {:>8.3}s {:>7.2} effective GFLOPS",
        "classical(gemm)",
        secs,
        effective_gflops(n, k, n, secs)
    );

    for name in ["strassen", "<4,2,4>", "<3,2,3>"] {
        let alg = algo::by_name(name).expect("catalog");
        // Best of one or two steps, as in the paper's protocol.
        let mut best = f64::INFINITY;
        let mut best_steps = 1;
        for steps in [1usize, 2] {
            let fm = FastMul::new(
                &alg.dec,
                Options {
                    steps,
                    ..Options::default()
                },
            );
            let (c, secs) = time_it(|| fm.multiply(&a, &b));
            let err = fast_matmul::matrix::relative_error(&c.as_ref(), &c_ref.as_ref());
            assert!(
                err < 1e-10,
                "{name} must be numerically correct (err {err:.1e})"
            );
            if secs < best {
                best = secs;
                best_steps = steps;
            }
        }
        println!(
            "{:<22} {:>8.3}s {:>7.2} effective GFLOPS  (best of steps: {})",
            format!("{name} (rank {})", alg.dec.rank()),
            best,
            effective_gflops(n, k, n, best),
            best_steps
        );
    }
    println!("\nShape-matched base cases (⟨4,2,4⟩, ⟨3,2,3⟩) divide the fixed inner");
    println!("dimension gently, so their subproblems stay on the flat part of the");
    println!("gemm curve — the paper's explanation for why they win here.");
}
