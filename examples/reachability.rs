//! Graph reachability with the word-packed boolean backend.
//!
//! The transitive closure of a digraph is computed by repeated boolean
//! squaring of `R = A | I` in the OR–AND semiring: after `⌈log₂ n⌉`
//! squarings, `R[i][j]` is set iff `j` is reachable from `i`. Each
//! squaring is one M4RM multiply over 64-entry words — OR-mode, because
//! reachability needs "is there *a* path", not the XOR path-parity that
//! GF(2) computes (two distinct paths would cancel mod 2).
//!
//! The second half demonstrates the GF(2) side proper: a Strassen plan
//! lifted mod 2 agrees bitwise with plain M4RM.
//!
//! Run with: `cargo run --release --example reachability`

use fast_matmul::gf2::{Gf2Matrix, Gf2Planner, Gf2Workspace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Reference closure: Floyd–Warshall on a dense bool grid, O(n³).
fn floyd_warshall(adj: &Gf2Matrix) -> Gf2Matrix {
    let n = adj.rows();
    let mut reach: Vec<Vec<bool>> = (0..n)
        .map(|i| (0..n).map(|j| i == j || adj.get(i, j)).collect())
        .collect();
    for via in 0..n {
        let via_row = reach[via].clone();
        for row in &mut reach {
            if row[via] {
                for (r, &v) in row.iter_mut().zip(&via_row) {
                    *r = *r || v;
                }
            }
        }
    }
    Gf2Matrix::from_fn(n, n, |i, j| reach[i][j])
}

/// Closure by repeated boolean squaring: `R ← R ∨ R·R` until fixpoint.
fn closure_by_squaring(adj: &Gf2Matrix) -> (Gf2Matrix, usize) {
    let n = adj.rows();
    let mut reach = Gf2Matrix::identity(n);
    reach.or_assign(adj);
    let mut squarings = 0;
    loop {
        let next = reach.or_mul(&reach);
        squarings += 1;
        if next == reach {
            return (reach, squarings);
        }
        reach = next;
    }
}

fn main() {
    // A sparse random digraph: ~4 out-edges per vertex.
    let n = 600;
    let mut rng = StdRng::seed_from_u64(7);
    let adj = Gf2Matrix::from_fn(n, n, |i, j| i != j && rng.gen_bool(4.0 / n as f64));

    let t0 = Instant::now();
    let (closure, squarings) = closure_by_squaring(&adj);
    let fast_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let reference = floyd_warshall(&adj);
    let fw_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        closure, reference,
        "squaring closure must match Floyd–Warshall"
    );

    let reachable_pairs = closure.count_ones();
    println!("graph: {n} vertices, {} edges", adj.count_ones());
    println!(
        "closure: {reachable_pairs} reachable pairs ({:.1}% of {}) in {squarings} squarings",
        100.0 * reachable_pairs as f64 / (n * n) as f64,
        n * n
    );
    println!("boolean squaring {fast_secs:.4}s vs Floyd–Warshall {fw_secs:.4}s");

    // GF(2) proper: Strassen lifted mod 2 agrees bitwise with M4RM.
    let m = 500;
    let a = Gf2Matrix::random(m, m, &mut rng);
    let b = Gf2Matrix::random(m, m, &mut rng);
    let plan = Gf2Planner::new()
        .shape(m, m, m)
        .steps(1)
        .plan()
        .expect("strassen lifts mod 2");
    let mut ws = Gf2Workspace::for_plan(&plan);
    let strassen = plan.execute(&a, &b, &mut ws);
    assert_eq!(strassen, a.mul_m4rm(&b), "strassen mod 2 must match m4rm");
    println!("gf2: strassen(depth 1) == m4rm on a {m}x{m} product");
}
