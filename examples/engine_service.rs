//! Engine quickstart: one long-lived `FmmEngine` serving a mixed-shape
//! request stream from several client threads — the plan-once /
//! serve-many shape a production deployment uses.
//!
//! Run with: `cargo run --release --example engine_service`

use fast_matmul::gemm;
use fast_matmul::matrix::{relative_error, Matrix};
use fast_matmul::FmmEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // One engine per process: it owns the thread pool (FMM_THREADS or
    // the hardware width), the LRU plan cache, and the workspace pool.
    let engine = FmmEngine::builder().build().expect("engine");
    println!("engine serving at width {}", engine.threads());

    // A mixed-shape workload — each shape is planned on first sight
    // (auto-selected from the catalog for its aspect ratio) and cached.
    let shapes = [(256, 256, 256), (192, 384, 192), (384, 192, 96)];
    let mut rng = StdRng::seed_from_u64(7);
    let problems: Vec<(Matrix, Matrix)> = shapes
        .iter()
        .map(|&(m, k, n)| {
            (
                Matrix::random(m, k, &mut rng),
                Matrix::random(k, n, &mut rng),
            )
        })
        .collect();

    // Synchronous serving from client threads: every thread shares the
    // same engine clone; steady-state requests hit the plan cache and
    // reuse pooled workspace arenas (zero allocation).
    let t0 = Instant::now();
    let served: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|client| {
                let engine = engine.clone();
                let problems = &problems;
                scope.spawn(move || {
                    for round in 0..6 {
                        let (a, b) = &problems[(client + round) % problems.len()];
                        let c = engine.multiply(a, b).expect("serve");
                        std::hint::black_box(&c);
                    }
                    6
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    println!(
        "served {served} multiplies from 4 client threads in {:.3}s",
        t0.elapsed().as_secs_f64()
    );

    // Asynchronous serving: operands move into detached pool jobs and
    // the handles join later — mixed shapes in one batch.
    let handles = engine.submit_batch(problems.clone());
    let results: Vec<Matrix> = handles
        .into_iter()
        .map(|h| h.wait().expect("batch result"))
        .collect();

    // Spot-check one product against the classical baseline.
    let (a, b) = &problems[0];
    let want = gemm::matmul(a, b);
    let err = relative_error(&results[0].as_ref(), &want.as_ref());
    println!("relative error vs classical gemm: {err:.2e}");

    let stats = engine.stats();
    println!(
        "stats: {} multiplies | plan cache {} hits / {} misses ({} cached) | \
         workspaces {} created, {} reused, {} pooled | {} tasks stolen",
        stats.multiplies,
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.plans_cached,
        stats.workspaces_created,
        stats.workspaces_reused,
        stats.workspaces_pooled,
        stats.tasks_stolen
    );
}
