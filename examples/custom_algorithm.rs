//! Bring your own algorithm: define a `⟦U,V,W⟧` decomposition, verify
//! it against the Brent equations, inspect its Table-2 statistics,
//! derive new base cases from it with the composition toolkit, and run
//! it through the executor — the full life cycle the paper's framework
//! automates.
//!
//! Run with: `cargo run --release --example custom_algorithm`

use fast_matmul::core::{FastMul, Options};
use fast_matmul::gemm;
use fast_matmul::matrix::{relative_error, Matrix};
use fast_matmul::tensor::compose::{direct_sum_n, kron_compose};
use fast_matmul::tensor::transform::permute_to;
use fast_matmul::tensor::Decomposition;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Strassen's ⟦U,V,W⟧, entered by hand (row-major vec convention).
    let u = Matrix::from_rows(&[
        &[1., 0., 1., 0., 1., -1., 0.],
        &[0., 0., 0., 0., 1., 0., 1.],
        &[0., 1., 0., 0., 0., 1., 0.],
        &[1., 1., 0., 1., 0., 0., -1.],
    ]);
    let v = Matrix::from_rows(&[
        &[1., 1., 0., -1., 0., 1., 0.],
        &[0., 0., 1., 0., 0., 1., 0.],
        &[0., 0., 0., 1., 0., 0., 1.],
        &[1., 0., -1., 0., 1., 0., 1.],
    ]);
    let w = Matrix::from_rows(&[
        &[1., 0., 0., 1., -1., 0., 1.],
        &[0., 0., 1., 0., 1., 0., 0.],
        &[0., 1., 0., 1., 0., 0., 0.],
        &[1., -1., 1., 0., 0., 1., 0.],
    ]);
    let mine = Decomposition::new(2, 2, 2, u, v, w);

    // 1. Verify: the framework refuses nothing — but you should check.
    mine.verify(0.0).expect("Brent equations hold");
    println!(
        "verified ⟨2,2,2⟩ rank {}: speedup/step {:.0}%, ω₀ = {:.3}, nnz = {}",
        mine.rank(),
        mine.speedup_per_step() * 100.0,
        mine.square_exponent(),
        mine.nnz(1e-12),
    );

    // 2. Derive new algorithms from it (§2.3 constructions).
    let a223 = direct_sum_n(&mine, &fast_matmul::tensor::compose::classical(2, 2, 1));
    println!(
        "⟨2,2,3⟩ by direct sum: rank {} (Hopcroft–Kerr optimal is 11)",
        a223.rank()
    );
    let a224 = kron_compose(&mine, &fast_matmul::tensor::compose::classical(1, 1, 2));
    println!("⟨2,2,4⟩ by composition: rank {}", a224.rank());
    let a322 = permute_to(&a223, (3, 2, 2)).expect("permutation");
    println!("⟨3,2,2⟩ by Prop. 2.1/2.2: rank {}", a322.rank());
    for d in [&a223, &a224, &a322] {
        d.verify(1e-12).expect("derived algorithms stay exact");
    }

    // 3. Run the derived ⟨2,2,3⟩ on a problem that needs peeling.
    let (p, q, r) = (355, 210, 451);
    let mut rng = StdRng::seed_from_u64(3);
    let a = Matrix::random(p, q, &mut rng);
    let b = Matrix::random(q, r, &mut rng);
    let fm = FastMul::new(
        &a223,
        Options {
            steps: 2,
            ..Options::default()
        },
    );
    let c = fm.multiply(&a, &b);
    let c_ref = gemm::matmul(&a, &b);
    let err = relative_error(&c.as_ref(), &c_ref.as_ref());
    println!("⟨2,2,3⟩ on {p}×{q}×{r} (dynamic peeling): relative error {err:.2e}");
    assert!(err < 1e-10);
}
