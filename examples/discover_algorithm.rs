//! Algorithm discovery with ALS (§2.3.2): re-find the classical
//! rank-8 ⟨2,2,2⟩ decomposition from random starts, then hunt briefly
//! for a rank-7 (Strassen-rank) solution, polishing any hit to discrete
//! coefficients.
//!
//! Run with: `cargo run --release --example discover_algorithm`

use fast_matmul::search::{search, AlsOptions};

fn main() {
    let opts = AlsOptions::default();

    println!("searching ⟨2,2,2⟩ at rank 8 (classical rank — easy):");
    match search(2, 2, 2, 8, 12, 100, &opts) {
        Some(res) => println!(
            "  found: residual {:.2e}, discrete {}, {} restarts",
            res.residual, res.discrete, res.restarts_used
        ),
        None => println!("  not found (unexpected at rank 8)"),
    }

    println!("searching ⟨2,2,2⟩ at rank 7 (Strassen rank — needs luck):");
    match search(2, 2, 2, 7, 60, 1000, &opts) {
        Some(res) => {
            println!(
                "  found: residual {:.2e}, discrete {}, {} restarts",
                res.residual, res.discrete, res.restarts_used
            );
            res.decomposition
                .verify(1e-8)
                .expect("a converged rank-7 fit is a fast algorithm");
            println!(
                "  speedup per recursive step: {:.0}%  (8/7 − 1)",
                res.decomposition.speedup_per_step() * 100.0
            );
        }
        None => println!(
            "  no luck within 60 restarts — try more (the paper used many starting points)"
        ),
    }
}
