//! The three parallel schemes of §4 side by side: DFS (parallel leaf
//! gemms), BFS (task per recursive multiply), and HYBRID (BFS for the
//! load-balanced bulk, DFS for the `R^L mod P` remainder).
//!
//! Run with: `cargo run --release --example parallel_schemes`

use fast_matmul::algo;
use fast_matmul::core::{effective_gflops, FastMul, Options, Scheme};
use fast_matmul::matrix::{relative_error, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let n = 1024;
    let threads = std::thread::available_parallelism().map_or(2, |t| t.get());
    let mut rng = StdRng::seed_from_u64(5);
    let a = Matrix::random(n, n, &mut rng);
    let b = Matrix::random(n, n, &mut rng);
    let c_ref = fast_matmul::gemm::matmul(&a, &b);

    let strassen = algo::by_name("strassen").unwrap();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();

    println!("Strassen, {n}×{n}×{n}, {threads} threads, 2 recursive steps\n");
    println!("with 2 steps of ⟨2,2,2⟩ there are 7² = 49 leaf multiplies; HYBRID runs");
    println!(
        "49 − (49 mod {threads}) = {} as BFS tasks and the rest with all threads\n",
        49 - 49 % threads
    );
    for (name, scheme) in [
        ("sequential", Scheme::Sequential),
        ("DFS", Scheme::Dfs),
        ("BFS", Scheme::Bfs),
        ("HYBRID", Scheme::Hybrid),
    ] {
        let fm = FastMul::new(
            &strassen.dec,
            Options {
                steps: 2,
                scheme,
                ..Options::default()
            },
        );
        let t0 = Instant::now();
        let c = pool.install(|| fm.multiply(&a, &b));
        let secs = t0.elapsed().as_secs_f64();
        let err = relative_error(&c.as_ref(), &c_ref.as_ref());
        assert!(err < 1e-10, "{name}: wrong result (err {err:.1e})");
        println!(
            "{name:<11} {secs:>7.3}s  {:>6.2} effective GFLOPS",
            effective_gflops(n, n, n, secs)
        );
    }
}
