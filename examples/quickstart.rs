//! Quickstart: plan a Strassen multiplication once, execute it many
//! times allocation-free, check the result against the classical
//! baseline, and report the paper's effective-GFLOPS metric for both.
//!
//! Run with: `cargo run --release --example quickstart`

use fast_matmul::algo;
use fast_matmul::core::{effective_gflops, GemmProfile, Planner, Workspace};
use fast_matmul::gemm;
use fast_matmul::matrix::{relative_error, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let n = 1024;
    let mut rng = StdRng::seed_from_u64(0);
    let a = Matrix::random(n, n, &mut rng);
    let b = Matrix::random(n, n, &mut rng);

    // The classical baseline (our vendor-BLAS stand-in).
    let t0 = Instant::now();
    let c_classical = gemm::matmul(&a, &b);
    let classical_secs = t0.elapsed().as_secs_f64();

    // Plan: Strassen from the catalog, with the recursion depth chosen
    // by the §3.4 cutoff rule from a quick gemm profile of this
    // machine. Planning is the expensive, once-per-shape step.
    let strassen = algo::by_name("strassen").expect("catalog");
    strassen
        .dec
        .verify(0.0)
        .expect("Strassen satisfies the Brent equations");
    let profile = GemmProfile::measure(&[64, 128, 256, 512]);
    let plan = Planner::new()
        .shape(n, n, n)
        .algorithm(&strassen.dec)
        .profile(profile)
        .plan()
        .expect("complete configuration");
    println!(
        "planned depth {} with a {:.1} MB workspace",
        plan.depth(),
        plan.workspace_bytes() as f64 / 1e6
    );

    // Execute: the hot path reuses one workspace, allocating nothing
    // after the first call.
    let mut ws = Workspace::for_plan(&plan);
    let mut c_fast = Matrix::zeros(n, n);
    let t0 = Instant::now();
    plan.execute(&a, &b, &mut c_fast, &mut ws);
    let fast_secs = t0.elapsed().as_secs_f64();

    let err = relative_error(&c_fast.as_ref(), &c_classical.as_ref());
    println!("problem: {n} x {n} x {n}");
    println!(
        "classical: {classical_secs:.3}s = {:.2} effective GFLOPS",
        effective_gflops(n, n, n, classical_secs)
    );
    println!(
        "strassen : {fast_secs:.3}s = {:.2} effective GFLOPS at depth {}",
        effective_gflops(n, n, n, fast_secs),
        plan.depth(),
    );
    println!("relative error vs classical: {err:.2e}");
    assert!(err < 1e-10, "fast result must match classical");
}
