//! Quickstart: multiply two matrices with Strassen's algorithm, check
//! the result against the classical baseline, and report the paper's
//! effective-GFLOPS metric for both.
//!
//! Run with: `cargo run --release --example quickstart`

use fast_matmul::algo;
use fast_matmul::core::{effective_gflops, FastMul, Options};
use fast_matmul::gemm;
use fast_matmul::matrix::{relative_error, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let n = 1024;
    let mut rng = StdRng::seed_from_u64(0);
    let a = Matrix::random(n, n, &mut rng);
    let b = Matrix::random(n, n, &mut rng);

    // The classical baseline (our vendor-BLAS stand-in).
    let t0 = Instant::now();
    let c_classical = gemm::matmul(&a, &b);
    let classical_secs = t0.elapsed().as_secs_f64();

    // Strassen's algorithm from the catalog, two recursive steps.
    let strassen = algo::by_name("strassen").expect("catalog");
    strassen
        .dec
        .verify(0.0)
        .expect("Strassen satisfies the Brent equations");
    let fast = FastMul::new(
        &strassen.dec,
        Options {
            steps: 2,
            ..Options::default()
        },
    );
    let t0 = Instant::now();
    let c_fast = fast.multiply(&a, &b);
    let fast_secs = t0.elapsed().as_secs_f64();

    let err = relative_error(&c_fast.as_ref(), &c_classical.as_ref());
    println!("problem: {n} x {n} x {n}");
    println!(
        "classical: {classical_secs:.3}s = {:.2} effective GFLOPS",
        effective_gflops(n, n, n, classical_secs)
    );
    println!(
        "strassen : {fast_secs:.3}s = {:.2} effective GFLOPS ({} recursive multiplies instead of {})",
        effective_gflops(n, n, n, fast_secs),
        7u32.pow(2),
        8u32.pow(2),
    );
    println!("relative error vs classical: {err:.2e}");
    assert!(err < 1e-10, "fast result must match classical");
}
